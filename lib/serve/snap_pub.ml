(* Incremental snapshot publication (ARCHITECTURE.md §18).

   The serve path used to publish a reader snapshot by deep-copying the
   whole database after every group commit — O(|DB| + index rebuild)
   per group, measured as the dominant share of durable apply latency
   (EXPERIMENTS.md E19).  This module applies the paper's own
   counting-delta discipline to publication itself: keep two shadow
   databases in rotation and, instead of copying, {e patch} the spare
   with the group's net tuple-count changes (surfaced from the
   maintenance algorithms' commit sites via [Changes.collector]), then
   publish it atomically.  Publish cost drops to O(|Δ| · indexes).

   Reader safety is epoch pinning.  A global epoch counter is bumped at
   every publish; each reader domain owns one pin cell.  To use a
   snapshot a reader stores the current epoch in its cell and only then
   fetches [published]; when done it parks the cell at [idle]
   (= max_int).  A buffer retired at epoch [E] may be patched again only
   once every cell holds a value ≥ [E]: a cell pinned below [E] can hold
   a reference to the retired buffer, a cell at or above [E] pinned
   after the swap and can only have fetched a newer one.  (The pin is
   written before the fetch and both are OCaml SC atomics, so a pin
   observed ≥ E really did happen after the publish that made [E]
   current — there is no window where a reader fetches the old buffer
   yet advertises a new epoch.)

   The writer's rotate wait is bounded: if a pinned reader does not
   drain within [max_wait_s] the writer abandons the pinned buffer to
   the GC and publishes a {e fresh} full copy instead — the stalled
   reader keeps its snapshot unmutated forever (invariant 13: a
   published snapshot is never mutated while any reader's epoch pins
   it), and the writer never blocks on a client (the PR 4/PR 8
   discipline).  Fallback also covers every commit the delta feed
   cannot describe: recompute batches, rule changes / algorithm
   switches ([View_manager.state_version]), a replaced database
   identity, and databases with registered aggregate indexes (their
   accumulator state is not tuple-count-patchable). *)

module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Database = Ivm_eval.Database
module Relation = Ivm_relation.Relation
module Json = Ivm_obs.Json
module Metrics = Ivm_obs.Metrics

let idle = max_int

type buffer = {
  mutable db : Database.t;
  pending : (string, Relation.t) Hashtbl.t;
      (** net changes committed to the live database since this buffer
          last equaled it; ⊎-merged per group, applied on rotation *)
  mutable dirty : bool;
      (** an untracked commit happened since this buffer last equaled
          the live database — [pending] is not a faithful replay and the
          next rotation must full-copy *)
  mutable retired_at : int;
      (** epoch at which this buffer stopped being the published one *)
}

type mode = Incremental | Full_copy

let mode_name = function
  | Incremental -> "incremental"
  | Full_copy -> "full_fallback"

type t = {
  vm : Vm.t;
  max_wait_s : float;
  epoch : int Atomic.t;
  published : Database.t Atomic.t;
  readers : int Atomic.t array;  (** per-reader pin cells, [idle] when unpinned *)
  (* writer-domain state *)
  mutable front : buffer;  (** currently published *)
  mutable spare : buffer;  (** patched and swapped in at the next publish *)
  mutable last_db : Database.t;
      (** physical identity of the live database at the last publish —
          a rule change replaces it wholesale *)
  mutable last_state_version : int;
  mutable last_publish_at : float;
  mutable last_mode : mode;
  (* writer-only counters, mirrored into the metrics registry *)
  mutable publishes : int;
  mutable incremental : int;
  mutable full_untracked : int;
  mutable full_stalled : int;
}

(* ---------------- metrics ---------------- *)

let publish_mode_c mode =
  Metrics.counter
    ~labels:[ ("mode", mode_name mode) ]
    "ivm_serve_publish_total" ~help:"Snapshot publishes, by mode"

let full_copies_c reason =
  Metrics.counter
    ~labels:[ ("reason", reason) ]
    "ivm_serve_publish_full_copies_total"
    ~help:"Publishes that fell back to a full database copy, by reason"

let patched_tuples_h =
  Metrics.histogram "ivm_serve_publish_patch_tuples"
    ~help:"Net tuples patched into the spare snapshot per incremental publish"

let snapshot_age_g =
  Metrics.gauge "ivm_serve_snapshot_age_seconds"
    ~help:"Seconds since the published snapshot was last swapped"

let reader_lag_g i =
  Metrics.gauge
    ~labels:[ ("reader", string_of_int i) ]
    "ivm_serve_reader_epoch_lag"
    ~help:"Publish epochs the reader's pin trails behind (0 when idle)"

let stage_h stage =
  Metrics.histogram
    ~labels:[ ("stage", stage) ]
    "ivm_serve_stage_ns"

(* ---------------- construction ---------------- *)

let shadow_of live =
  {
    db = Database.copy ~with_indexes:false live;
    pending = Hashtbl.create 8;
    dirty = false;
    retired_at = 0;
  }

let create ?(max_wait_s = 0.05) ~readers (vm : Vm.t) : t =
  if readers < 1 then invalid_arg "Snap_pub.create: readers must be >= 1";
  (* pre-register every label combination so the families export at 0
     from the first scrape, before any publish or fallback happens *)
  ignore (publish_mode_c Incremental);
  ignore (publish_mode_c Full_copy);
  ignore (full_copies_c "untracked");
  ignore (full_copies_c "stalled_reader");
  let live = Vm.database vm in
  let front = shadow_of live and spare = shadow_of live in
  {
    vm;
    max_wait_s;
    epoch = Atomic.make 1;
    published = Atomic.make front.db;
    readers = Array.init readers (fun _ -> Atomic.make idle);
    front;
    spare;
    last_db = live;
    last_state_version = Vm.state_version vm;
    last_publish_at = Unix.gettimeofday ();
    last_mode = Full_copy;
    publishes = 0;
    incremental = 0;
    full_untracked = 0;
    full_stalled = 0;
  }

(* ---------------- reader protocol ---------------- *)

let acquire (t : t) ~reader : Database.t =
  let cell = t.readers.(reader) in
  (* pin BEFORE fetching: the writer treats a cell below a buffer's
     retirement epoch as "may still hold it", so the unsafe interleaving
     (fetch old buffer, then advertise a fresh epoch) cannot be
     expressed *)
  Atomic.set cell (Atomic.get t.epoch);
  Atomic.get t.published

let release (t : t) ~reader : unit = Atomic.set t.readers.(reader) idle

(** The published snapshot without pinning — safe only where no publish
    can run concurrently (the writer domain itself, single-domain
    tests).  Readers must use {!acquire}/{!release}. *)
let current (t : t) : Database.t = Atomic.get t.published

let epoch (t : t) : int = Atomic.get t.epoch

(* ---------------- writer side ---------------- *)

let mark_dirty (buf : buffer) =
  buf.dirty <- true;
  (* a dirty buffer's pending set is useless — drop it rather than keep
     merging into it until the full copy clears it *)
  Hashtbl.reset buf.pending

let merge_pending (buf : buffer) (delta : Changes.t) =
  if not buf.dirty then
    List.iter
      (fun (pred, d) ->
        match Hashtbl.find_opt buf.pending pred with
        | Some acc -> Relation.union_into ~into:acc d
        | None ->
          Hashtbl.replace buf.pending pred (Relation.copy ~with_indexes:false d))
      delta

let pending_tuples (buf : buffer) =
  Hashtbl.fold (fun _ r acc -> acc + Relation.cardinal r) buf.pending 0

let apply_pending (buf : buffer) =
  Hashtbl.iter
    (fun pred acc ->
      let stored = Database.relation buf.db pred in
      Relation.iter (fun tup c -> Relation.patch stored tup c) acc)
    buf.pending;
  Hashtbl.reset buf.pending

let unpinned (t : t) (buf : buffer) =
  Array.for_all (fun cell -> Atomic.get cell >= buf.retired_at) t.readers

(* Spin (with short naps) until every reader has drained past the
   buffer's retirement epoch, or the deadline passes. *)
let wait_unpinned (t : t) (buf : buffer) : bool =
  if unpinned t buf then true
  else begin
    let deadline = Unix.gettimeofday () +. t.max_wait_s in
    let rec go spins =
      if unpinned t buf then true
      else if Unix.gettimeofday () > deadline then false
      else begin
        if spins > 200 then Unix.sleepf 0.0002 else Domain.cpu_relax ();
        go (spins + 1)
      end
    in
    go 0
  end

(** Publish the live database's state after a group commit.  Writer
    domain only.  [track], when complete and nothing moved out-of-band
    since the last publish, carries the group's exact net changes: both
    shadows absorb them and the spare is patched in place — otherwise
    both shadows are marked dirty and a fresh full copy is published.
    Returns the mode actually used. *)
let publish ?track (t : t) : mode =
  let live = Vm.database t.vm in
  let version = Vm.state_version t.vm in
  let tracked =
    match track with
    | Some col
      when Changes.is_complete col
           && live == t.last_db
           && version = t.last_state_version
           && Database.agg_signatures live = [] ->
      Some (Changes.collected col)
    | _ -> None
  in
  (match tracked with
  | Some delta ->
    merge_pending t.front delta;
    merge_pending t.spare delta
  | None ->
    mark_dirty t.front;
    mark_dirty t.spare);
  let w0 = Unix.gettimeofday () in
  let spare_free = wait_unpinned t t.spare in
  let w1 = Unix.gettimeofday () in
  Metrics.observe (stage_h "publish.rotate_wait")
    (int_of_float ((w1 -. w0) *. 1e9));
  let mode, fresh_front =
    if spare_free && not t.spare.dirty then begin
      let n = pending_tuples t.spare in
      apply_pending t.spare;
      let w2 = Unix.gettimeofday () in
      Metrics.observe (stage_h "publish.patch")
        (int_of_float ((w2 -. w1) *. 1e9));
      Metrics.observe patched_tuples_h n;
      (Incremental, t.spare)
    end
    else begin
      (* Untracked commit, or a stalled reader still pins the spare: give
         the spare up to the GC (never mutate a buffer a reader may hold
         — invariant 13) and copy the live database afresh.  The copy
         equals the live state, so the new buffer starts clean. *)
      let reason = if spare_free then "untracked" else "stalled_reader" in
      Metrics.inc (full_copies_c reason);
      if spare_free then t.full_untracked <- t.full_untracked + 1
      else t.full_stalled <- t.full_stalled + 1;
      (Full_copy, shadow_of live)
    end
  in
  (* swap: make the new buffer fetchable first, then bump the epoch —
     a pin at the new epoch can only have fetched the new buffer, so the
     outgoing front is exactly "retired at the new epoch" *)
  let outgoing = t.front in
  Atomic.set t.published fresh_front.db;
  let e' = 1 + Atomic.fetch_and_add t.epoch 1 in
  outgoing.retired_at <- e';
  t.front <- fresh_front;
  t.spare <- outgoing;
  t.last_db <- live;
  t.last_state_version <- version;
  t.last_publish_at <- Unix.gettimeofday ();
  t.last_mode <- mode;
  t.publishes <- t.publishes + 1;
  if mode = Incremental then t.incremental <- t.incremental + 1;
  Metrics.inc (publish_mode_c mode);
  Metrics.set snapshot_age_g 0.;
  mode

(* ---------------- observability ---------------- *)

let reader_lag (t : t) i =
  let pinned = Atomic.get t.readers.(i) in
  if pinned = idle then 0 else max 0 (Atomic.get t.epoch - pinned)

(** Refresh the snapshot-age and per-reader epoch-lag gauges (called
    from the monitor's before-scrape hook and after each publish). *)
let refresh_gauges (t : t) : unit =
  Metrics.set snapshot_age_g (Unix.gettimeofday () -. t.last_publish_at);
  Array.iteri
    (fun i _ -> Metrics.set (reader_lag_g i) (float_of_int (reader_lag t i)))
    t.readers

type stats = {
  publishes : int;
  incremental : int;
  full_copies : int;
  full_stalled : int;
}

let stats (t : t) : stats =
  {
    publishes = t.publishes;
    incremental = t.incremental;
    full_copies = t.full_untracked + t.full_stalled;
    full_stalled = t.full_stalled;
  }

(** The publisher block of the server's [/statusz] document.  Same racy
    point-in-time read contract as the rest of the status page. *)
let status_json (t : t) : Json.t =
  let readers =
    Array.to_list
      (Array.mapi
         (fun i cell ->
           let pinned = Atomic.get cell <> idle in
           Json.Obj
             [
               ("reader", Json.int i);
               ("pinned", Json.Bool pinned);
               ("epoch_lag", Json.int (reader_lag t i));
             ])
         t.readers)
  in
  Json.Obj
    [
      ("epoch", Json.int (Atomic.get t.epoch));
      ("mode", Json.Str (mode_name t.last_mode));
      ("publishes", Json.int t.publishes);
      ("incremental", Json.int t.incremental);
      ("full_untracked", Json.int t.full_untracked);
      ("full_stalled", Json.int t.full_stalled);
      ( "snapshot_age_s",
        Json.Num (Unix.gettimeofday () -. t.last_publish_at) );
      ("max_wait_s", Json.Num t.max_wait_s);
      ("readers", Json.List readers);
    ]
