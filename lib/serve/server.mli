(** The multi-client view server: a TCP front door over one
    {!Ivm.View_manager} speaking the {!Protocol} codec in
    {!Ivm_wire.Frame} envelopes (see [docs/PROTOCOL.md]).

    Concurrency shape (ARCHITECTURE.md §16): an accept domain, a pool of
    reader domains that own the client sockets and answer queries
    against an atomically-published immutable snapshot, and a single
    writer domain that drains queued [Apply] batches and commits each
    drain as a {e group} — per batch normalize → WAL append (unsynced) →
    maintain, then one fsync ({!Ivm.View_manager.apply_group}), then
    snapshot publication, acks, and subscriber delta fan-out.

    Invariant 11: snapshot publication and every [Applied] /
    [Delta] message happen strictly after the group's fsync, so no
    client ever observes a batch the WAL has not made durable. *)

type config = {
  auth_token : string option;
      (** when set, [Hello] must carry exactly this token *)
  max_sessions : int;  (** connections beyond this are refused *)
  max_batch_tuples : int;  (** per-[Apply] tuple quota *)
  readers : int;  (** reader-domain pool size (>= 1) *)
  client_timeout_s : float;
      (** socket send/receive timeout; a stalled client is dropped after
          at most this long, and can only ever stall its own reader *)
  max_outbox : int;
      (** per-session bound on pending outbox messages: a subscriber
          whose deltas back up past this has further deltas dropped
          (counted in [ivm_serve_deltas_dropped_total]) and is
          disconnected by its owning reader *)
  publish_max_wait_s : float;
      (** how long the writer waits for a pinned reader before a
          publish falls back to a full snapshot copy ({!Snap_pub}) *)
  full_publish : bool;
      (** benchmarking escape hatch: publish untracked, forcing the
          pre-incremental full-copy path on every group *)
}

(** [{auth_token = None; max_sessions = 64; max_batch_tuples = 100_000;
    readers = 2; client_timeout_s = 5.0; max_outbox = 1024;
    publish_max_wait_s = 0.05; full_publish = false}] *)
val default_config : config

type t

(** Point-in-time counters, also exported through {!Ivm_obs.Metrics} as
    [ivm_serve_*]. *)
type stats = {
  sessions : int;  (** currently connected *)
  accepted : int;  (** connections accepted since start *)
  group_commits : int;  (** fsyncs *)
  committed_batches : int;  (** batches successfully applied *)
  deltas_pushed : int;
  deltas_dropped : int;  (** deltas dropped on subscriber outbox overflow *)
  protocol_errors : int;  (** [Error] responses sent *)
}

(** Start serving [vm] on [host:port] ([port = 0] picks an ephemeral
    port, see {!port}).  Spawns [config.readers + 2] domains.  The
    caller must not mutate [vm] while the server runs — the writer
    domain owns it.  Registers an [at_exit] stop, like
    [Ivm_monitor.Monitor]. *)
val start :
  ?host:string -> ?config:config -> vm:Ivm.View_manager.t -> port:int ->
  unit -> t

(** Graceful shutdown: stop accepting, drain and group-commit the
    pending apply queue, send [Bye] to every session, close everything,
    join all domains.  Idempotent. *)
val stop : t -> unit

(** The bound port. *)
val port : t -> int

val manager : t -> Ivm.View_manager.t

(** The snapshot publisher — epoch/lag/mode introspection and the
    monitor's gauge-refresh hook ({!Snap_pub.refresh_gauges}).  Pin
    cells [0 .. config.readers - 1] belong to the reader domains; cell
    [config.readers] is a spare for out-of-band holders (backup dumps,
    load harnesses) — pin it with {!Snap_pub.acquire} and the writer
    stays live, falling back to full copies past
    [publish_max_wait_s]. *)
val publisher : t -> Snap_pub.t

val stats : t -> stats

(** The [Status_reply] document: a ["server"] section (sessions, commit
    and delta counters, published sequence, and a ["per_session"] array
    with each session's request count, mean/max latency, subscription
    list, and outbox depth — fed by {!Ivm_obs.Reqtrace}) plus the
    manager's {!Ivm.View_manager.status_json} under ["manager"]. *)
val status_json : t -> Ivm_obs.Json.t
