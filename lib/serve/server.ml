(* The multi-client view server.

   Architecture (ARCHITECTURE.md §16):

   - one {b accept domain} hands incoming connections to the reader pool;
   - a small pool of {b reader domains} multiplexes all client sessions
     with [select]: each session is owned by exactly one reader, which
     performs {e every} read and write on its socket — queries are
     answered inline against the published snapshot, applies are handed
     to the writer;
   - one {b writer domain} drains the apply queue and commits the whole
     queue as a group: per batch normalize → WAL append (no fsync) →
     maintain, then {e one} fsync for the group
     ([View_manager.apply_group]), then an atomic publish of a fresh
     immutable snapshot, then acks and subscriber deltas are routed back
     through each session's owning reader.

   Readers never touch the live database (they query the snapshot in
   [published], swapped atomically after each group commit), and the
   writer never touches a socket (acks travel via per-reader outboxes),
   so a stalled or disconnecting client can only ever stall its own
   reader for one socket-timeout — never the writer, never maintenance.
   Invariant 11: because publish and ack both happen after the group's
   fsync, no client observes a batch the WAL has not made durable. *)

module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Database = Ivm_eval.Database
module Query = Ivm_eval.Query
module Program = Ivm_datalog.Program
module Relation = Ivm_relation.Relation
module Frame = Ivm_wire.Frame
module Wire = Ivm_wire.Wire
module Json = Ivm_obs.Json
module Metrics = Ivm_obs.Metrics
module Reqtrace = Ivm_obs.Reqtrace

type config = {
  auth_token : string option;
  max_sessions : int;
  max_batch_tuples : int;
  readers : int;
  client_timeout_s : float;
  max_outbox : int;
  publish_max_wait_s : float;
      (** how long the writer waits for a pinned reader before a publish
          falls back to a full snapshot copy ({!Snap_pub}) *)
  full_publish : bool;
      (** benchmarking escape hatch: publish untracked, forcing the
          pre-incremental full-copy path on every group *)
}

let default_config =
  {
    auth_token = None;
    max_sessions = 64;
    max_batch_tuples = 100_000;
    readers = 2;
    client_timeout_s = 5.0;
    max_outbox = 1024;
    publish_max_wait_s = 0.05;
    full_publish = false;
  }

type session = {
  sid : int;
  fd : Unix.file_descr;
  mutable authed : bool;
  mutable subs : string list;  (** views this session wants deltas of *)
  mutable alive : bool;
      (** flipped (and the fd closed) only by the owning reader; the
          writer routes messages by session struct, so a dead session's
          pending messages are skipped, never written to a reused fd *)
  mutable outq : int;
      (** messages queued in the owning reader's outbox for this
          session (guarded by the reader's lock) — the bound
          [config.max_outbox] applies to *)
  mutable doomed : bool;
      (** outbox overflowed: the writer stops routing deltas here and
          the owning reader disconnects the session at its next pass *)
  (* per-session request stats (reqtrace): mutated only on the owning
     reader, read racily by [status_json] — same point-in-time contract
     as the rest of the status document *)
  mutable reqs : int;
  mutable req_ns : int;
  mutable req_max_ns : int;
}

(** One outbox entry: the response plus the request-trace handle to
    complete once the frame is on the wire ([routed] is the enqueue
    time, so the [ack] stage spans routing, reader wake-up, and the
    socket write). *)
type outmsg = {
  om_s : session;
  om_resp : Protocol.response;
  om_rq : Reqtrace.t option;
  om_routed : float;
}

type reader = {
  idx : int;
  lock : Mutex.t;
  mutable sessions : session list;
  outbox : outmsg Queue.t;
      (** messages other domains (writer, accept) want sent; drained and
          written by this reader, the only domain that touches the fds *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable domain : unit Domain.t option;
}

type job = {
  js : session;
  changes : Protocol.changes;
  rq : Reqtrace.t option;  (** request trace, riding with the batch *)
  echo_timings : bool;  (** client sent a trace context: return timings *)
  enq : float;  (** enqueue time — start of the [queue] stage *)
}

type t = {
  vm : Vm.t;
  config : config;
  lsock : Unix.file_descr;
  port : int;
  wake_addr : Unix.sockaddr;
  pub : Snap_pub.t;
      (** double-buffered snapshot publisher: readers pin per-query,
          the writer patches/rotates per group commit *)
  published_seq : int Atomic.t;
  stopped : bool Atomic.t;
  pool : reader array;
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable accept_domain : unit Domain.t option;
  mutable writer_domain : unit Domain.t option;
  started_at : float;
  next_sid : int Atomic.t;
  (* stats mirrored into the metrics registry *)
  accepted : int Atomic.t;
  live_sessions : int Atomic.t;
  group_commits : int Atomic.t;
  committed_batches : int Atomic.t;
  deltas_pushed : int Atomic.t;
  deltas_dropped : int Atomic.t;
  protocol_errors : int Atomic.t;
}

type stats = {
  sessions : int;
  accepted : int;
  group_commits : int;
  committed_batches : int;
  deltas_pushed : int;
  deltas_dropped : int;
  protocol_errors : int;
}

let port t = t.port
let manager t = t.vm
let publisher t = t.pub

let stats (t : t) =
  {
    sessions = Atomic.get t.live_sessions;
    accepted = Atomic.get t.accepted;
    group_commits = Atomic.get t.group_commits;
    committed_batches = Atomic.get t.committed_batches;
    deltas_pushed = Atomic.get t.deltas_pushed;
    deltas_dropped = Atomic.get t.deltas_dropped;
    protocol_errors = Atomic.get t.protocol_errors;
  }

(* ---------------- metrics ---------------- *)

let sessions_g =
  Metrics.gauge "ivm_serve_sessions" ~help:"Connected client sessions"

let accepted_c =
  Metrics.counter "ivm_serve_sessions_total"
    ~help:"Client connections accepted since start"

let requests_c op =
  Metrics.counter ~labels:[ ("op", op) ] "ivm_serve_requests_total"
    ~help:"Protocol requests handled, by opcode"

let commits_c =
  Metrics.counter "ivm_serve_group_commits_total"
    ~help:"Group commits (one fsync each)"

let batches_c =
  Metrics.counter "ivm_serve_committed_batches_total"
    ~help:"Client batches committed (>= 1 per group commit)"

let group_size_h =
  Metrics.histogram "ivm_serve_group_size"
    ~help:"Batches per group commit (fsync amortization)"

let deltas_c =
  Metrics.counter "ivm_serve_deltas_pushed_total"
    ~help:"Delta messages pushed to subscribers"

let deltas_dropped_c =
  Metrics.counter "ivm_serve_deltas_dropped_total"
    ~help:"Delta messages dropped on subscriber outbox overflow"

let errors_c =
  Metrics.counter "ivm_serve_protocol_errors_total"
    ~help:"Error responses sent to clients"

let queue_depth_g =
  Metrics.gauge "ivm_serve_queue_depth"
    ~help:"Apply batches waiting for the writer domain"

let queue_wait_g =
  Metrics.gauge "ivm_serve_queue_wait_ns"
    ~help:"Longest queue wait in the last drained group, nanoseconds"

(* ---------------- outbox routing ---------------- *)

let poke r =
  (* a full pipe already guarantees a pending wake-up *)
  try ignore (Unix.write r.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

let drain_wake r =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read r.wake_r b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  go ()

(** Queue [resp] for [s] on its owning reader; the reader performs the
    actual socket write (and completes [rq] after it).  Safe from any
    domain.  Acks and errors always enqueue — only delta pushes go
    through the bounded {!route_delta}. *)
let route ?rq (t : t) (s : session) (resp : Protocol.response) =
  let r = t.pool.(s.sid mod Array.length t.pool) in
  Mutex.lock r.lock;
  s.outq <- s.outq + 1;
  Queue.add
    { om_s = s; om_resp = resp; om_rq = rq; om_routed = Unix.gettimeofday () }
    r.outbox;
  Mutex.unlock r.lock;
  poke r

(** Bounded delta routing: a subscriber whose outbox already holds
    [config.max_outbox] pending messages gets this delta {e dropped}
    (counted in [ivm_serve_deltas_dropped_total]) and is marked doomed —
    its owning reader disconnects it at the next pass.  An unbounded
    outbox would otherwise let one slow subscriber absorb the server's
    memory at the writer's publish rate (ROADMAP backpressure item). *)
let route_delta (t : t) (s : session) (resp : Protocol.response) =
  let r = t.pool.(s.sid mod Array.length t.pool) in
  Mutex.lock r.lock;
  let dropped = s.doomed || s.outq >= t.config.max_outbox in
  if dropped then s.doomed <- true
  else begin
    s.outq <- s.outq + 1;
    Queue.add
      { om_s = s; om_resp = resp; om_rq = None;
        om_routed = Unix.gettimeofday () }
      r.outbox
  end;
  Mutex.unlock r.lock;
  if dropped then begin
    Atomic.incr t.deltas_dropped;
    Metrics.inc deltas_dropped_c
  end
  else begin
    Atomic.incr t.deltas_pushed;
    Metrics.inc deltas_c
  end;
  poke r

(* ---------------- session lifecycle (owning reader only) ---------------- *)

let close_session (t : t) r (s : session) =
  if s.alive then begin
    s.alive <- false;
    Mutex.lock r.lock;
    r.sessions <- List.filter (fun x -> x != s) r.sessions;
    Mutex.unlock r.lock;
    (try Unix.close s.fd with Unix.Unix_error _ -> ());
    Atomic.decr t.live_sessions;
    Metrics.set sessions_g (float_of_int (Atomic.get t.live_sessions))
  end

(** Write one response on the owning reader's domain.  Any failure —
    EPIPE, a send timeout on a stalled client, a closed fd — drops the
    session; it must never propagate into the reader loop. *)
let send (t : t) r (s : session) (resp : Protocol.response) =
  if s.alive then begin
    (match resp with
    | Protocol.Error _ ->
      Atomic.incr t.protocol_errors;
      Metrics.inc errors_c
    | _ -> ());
    try Frame.write_fd s.fd (Protocol.encode_response resp)
    with _ -> close_session t r s
  end

(* fold one finished request into the session's aggregates (owning
   reader only; [status_json] reads these racily, like everything else
   in the status document) *)
let note_request (s : session) ns =
  s.reqs <- s.reqs + 1;
  s.req_ns <- s.req_ns + ns;
  if ns > s.req_max_ns then s.req_max_ns <- ns

(** Send [resp] and complete the request trace: the [ack] stage spans
    [t0] (routing or handling start) to the end of the socket write. *)
let send_traced (t : t) r (s : session) (rq : Reqtrace.t option) ~t0 resp =
  send t r s resp;
  Reqtrace.add_stage rq "ack" ~t0 ~t1:(Unix.gettimeofday ());
  match Reqtrace.finish rq with
  | Some ns -> note_request s ns
  | None -> ()

(* ---------------- request handling (reader domains) ---------------- *)

let batch_tuples (changes : Protocol.changes) =
  List.fold_left (fun acc (_, d) -> acc + Relation.cardinal d) 0 changes

let query_error = function
  | Ivm_datalog.Parser.Parse_error msg -> "parse error: " ^ msg
  | Ivm_datalog.Safety.Unsafe msg -> "unsafe query: " ^ msg
  | Ivm_datalog.Program.Program_error msg -> msg
  | Invalid_argument msg | Failure msg -> msg
  | e -> Printexc.to_string e

let session_json (s : session) =
  Json.Obj
    [
      ("sid", Json.int s.sid);
      ("authed", Json.Bool s.authed);
      ("subscriptions", Json.List (List.map (fun p -> Json.Str p) s.subs));
      ("outbox", Json.int s.outq);
      ("requests", Json.int s.reqs);
      ( "mean_request_ns",
        Json.int (if s.reqs = 0 then 0 else s.req_ns / s.reqs) );
      ("max_request_ns", Json.int s.req_max_ns);
    ]

let status_json (t : t) =
  let mean_group =
    let c = Atomic.get t.group_commits in
    if c = 0 then 0.
    else float_of_int (Atomic.get t.committed_batches) /. float_of_int c
  in
  let per_session =
    Array.to_list t.pool
    |> List.concat_map (fun r -> Mutex.protect r.lock (fun () -> r.sessions))
    |> List.sort (fun a b -> compare a.sid b.sid)
    |> List.map session_json
  in
  let server =
    Json.Obj
      [
        ("port", Json.int t.port);
        ("uptime_s", Json.Num (Unix.gettimeofday () -. t.started_at));
        ("sessions", Json.int (Atomic.get t.live_sessions));
        ("sessions_total", Json.int (Atomic.get t.accepted));
        ("published_seq", Json.int (Atomic.get t.published_seq));
        ("publish", Snap_pub.status_json t.pub);
        ("group_commits", Json.int (Atomic.get t.group_commits));
        ("committed_batches", Json.int (Atomic.get t.committed_batches));
        ("mean_group_size", Json.Num mean_group);
        ("deltas_pushed", Json.int (Atomic.get t.deltas_pushed));
        ("deltas_dropped", Json.int (Atomic.get t.deltas_dropped));
        ("protocol_errors", Json.int (Atomic.get t.protocol_errors));
        ("reqtrace", Json.Bool (Reqtrace.enabled ()));
        ("per_session", Json.List per_session);
      ]
  in
  (* same racy point-in-time read contract as the monitor's /statusz *)
  Json.Obj [ ("server", server); ("manager", Vm.status_json t.vm) ]

let op_name : Protocol.request -> string = function
  | Hello _ -> "hello"
  | Ping -> "ping"
  | Query _ -> "query"
  | Apply _ -> "apply"
  | Subscribe _ -> "subscribe"
  | Status -> "status"
  | Close -> "close"

(** [t0] is the frame's arrival (the start of the socket read): the
    request trace's [decode] stage spans read + CRC check + decode +
    dispatch.  Inline ops finish here ([decode] → work → [ack]); applies
    hand their trace to the writer inside the job and are finished by
    the owning reader when the ack leaves the outbox. *)
let handle_request (t : t) r (s : session) ~(t0 : float)
    (req : Protocol.request) =
  let open Protocol in
  let trace_ctx =
    match req with
    | Query { trace; _ } | Apply { trace; _ } -> trace
    | _ -> ""
  in
  let rq =
    Reqtrace.start
      ?id:(if trace_ctx = "" then None else Some trace_ctx)
      ~sid:s.sid ~op:(op_name req) ()
  in
  Reqtrace.add_stage rq "decode" ~t0 ~t1:(Unix.gettimeofday ());
  let reply resp = send_traced t r s rq ~t0:(Unix.gettimeofday ()) resp in
  match req with
  | Hello { version; token } ->
    Metrics.inc (requests_c "hello");
    if s.authed then reply (Error { code = Bad_request; message = "already said hello" })
    else if version <> Protocol.version then begin
      reply
        (Error
           {
             code = Bad_version;
             message =
               Printf.sprintf "protocol version %d not supported (want %d)"
                 version Protocol.version;
           });
      close_session t r s
    end
    else begin
      match t.config.auth_token with
      | Some expected when not (String.equal expected token) ->
        reply (Error { code = Auth_failed; message = "bad auth token" });
        close_session t r s
      | _ ->
        s.authed <- true;
        reply
          (Hello_ok { version = Protocol.version; seq = Atomic.get t.published_seq })
    end
  | _ when not s.authed ->
    reply (Error { code = Bad_request; message = "hello required first" });
    close_session t r s
  | Ping ->
    Metrics.inc (requests_c "ping");
    reply Pong
  | Query { body; _ } -> (
    Metrics.inc (requests_c "query");
    (* against the published immutable snapshot — never the database the
       writer is maintaining.  The pin spans only the evaluation: the
       reply below can block for a full socket timeout on a stalled
       client, and holding the pin there would force the writer into
       full-copy fallbacks. *)
    let db = Snap_pub.acquire t.pub ~reader:r.idx in
    let q0 = Unix.gettimeofday () in
    let res =
      match Query.run_text db body with
      | answer -> Ok answer
      | exception e -> Error e
    in
    Snap_pub.release t.pub ~reader:r.idx;
    Reqtrace.add_stage rq "query" ~t0:q0 ~t1:(Unix.gettimeofday ());
    match res with
    | Ok { Query.columns; rows } -> reply (Answer { columns; rows })
    | Error e -> reply (Error { code = Query_failed; message = query_error e }))
  | Apply { changes; _ } ->
    Metrics.inc (requests_c "apply");
    if Atomic.get t.stopped then
      reply (Error { code = Shutting_down; message = "server is draining" })
    else if batch_tuples changes > t.config.max_batch_tuples then
      reply
        (Error
           {
             code = Quota_exceeded;
             message =
               Printf.sprintf "batch of %d tuples exceeds per-batch quota %d"
                 (batch_tuples changes) t.config.max_batch_tuples;
           })
    else begin
      Mutex.lock t.qlock;
      Queue.add
        { js = s; changes; rq; echo_timings = trace_ctx <> "";
          enq = Unix.gettimeofday () }
        t.queue;
      Metrics.set queue_depth_g (float_of_int (Queue.length t.queue));
      Condition.signal t.qcond;
      Mutex.unlock t.qlock
      (* the ack (Applied / Error) arrives via the outbox after the
         group commit this batch rides in *)
    end
  | Subscribe pred ->
    Metrics.inc (requests_c "subscribe");
    let program = Vm.program t.vm in
    if not (Program.mem_pred program pred) then
      reply (Error { code = Bad_request; message = "unknown predicate " ^ pred })
    else if Program.is_base program pred then
      reply
        (Error
           {
             code = Bad_request;
             message = pred ^ " is a base relation; subscribe to a view";
           })
    else begin
      if not (List.mem pred s.subs) then s.subs <- pred :: s.subs;
      reply (Sub_ok pred)
    end
  | Status ->
    Metrics.inc (requests_c "status");
    reply (Status_reply (Json.to_string (status_json t)))
  | Close ->
    Metrics.inc (requests_c "close");
    reply Bye;
    close_session t r s

let handle_readable (t : t) r (s : session) =
  let t0 = Unix.gettimeofday () in
  match Frame.read_fd s.fd with
  | exception Frame.Closed -> close_session t r s
  | exception Wire.Corrupt msg ->
    send t r s
      (Error { code = Protocol.Bad_request; message = "bad frame: " ^ msg });
    close_session t r s
  | exception Unix.Unix_error _ -> close_session t r s
  | payload -> (
    match Protocol.decode_request payload with
    | exception Wire.Corrupt msg ->
      send t r s
        (Error { code = Protocol.Bad_request; message = "bad request: " ^ msg });
      close_session t r s
    | req -> handle_request t r s ~t0 req)

let reader_loop (t : t) (r : reader) =
  while not (Atomic.get t.stopped) do
    (* 1. deliver messages other domains queued for our sessions *)
    let pending =
      Mutex.lock r.lock;
      let msgs = List.of_seq (Queue.to_seq r.outbox) in
      Queue.clear r.outbox;
      List.iter (fun m -> m.om_s.outq <- m.om_s.outq - 1) msgs;
      let sessions = r.sessions in
      Mutex.unlock r.lock;
      (msgs, sessions)
    in
    let msgs, sessions = pending in
    List.iter
      (fun m ->
        match m.om_rq with
        | None -> send t r m.om_s m.om_resp
        | Some _ -> send_traced t r m.om_s m.om_rq ~t0:m.om_routed m.om_resp)
      msgs;
    (* disconnect sessions whose delta outbox overflowed (marked by the
       writer in [route_delta]; only the owning reader may close) *)
    List.iter
      (fun s ->
        if s.doomed && s.alive then begin
          send t r s
            (Protocol.Error
               {
                 code = Protocol.Quota_exceeded;
                 message =
                   Printf.sprintf
                     "subscriber outbox overflowed (max %d pending messages)"
                     t.config.max_outbox;
               });
          close_session t r s
        end)
      sessions;
    (* 2. wait for traffic *)
    let fds =
      r.wake_r :: List.filter_map (fun s -> if s.alive then Some s.fd else None) sessions
    in
    (match Unix.select fds [] [] 0.5 with
    | exception Unix.Unix_error ((EINTR | EBADF), _, _) -> ()
    | ready, _, _ ->
      if List.memq r.wake_r ready then drain_wake r;
      List.iter
        (fun s -> if s.alive && List.memq s.fd ready then handle_readable t r s)
        sessions)
  done;
  (* graceful shutdown: tell every session goodbye, then close it *)
  List.iter
    (fun s ->
      send t r s Protocol.Bye;
      close_session t r s)
    (Mutex.protect r.lock (fun () -> r.sessions))

(* ---------------- writer domain ---------------- *)

let writer_loop (t : t) =
  let running = ref true in
  while !running do
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not (Atomic.get t.stopped) do
      Condition.wait t.qcond t.qlock
    done;
    let jobs = List.of_seq (Queue.to_seq t.queue) in
    Queue.clear t.queue;
    if Atomic.get t.stopped && jobs = [] then running := false;
    Mutex.unlock t.qlock;
    if jobs <> [] then begin
      (* queue stage: from each batch's enqueue to the moment this drain
         starts processing — a batch's wait folds in its predecessors'
         work, which is exactly the latency the client experienced *)
      let jobs_a = Array.of_list jobs in
      let t_drain = Unix.gettimeofday () in
      Array.iter
        (fun j -> Reqtrace.add_stage j.rq "queue" ~t0:j.enq ~t1:t_drain)
        jobs_a;
      Metrics.set queue_depth_g 0.;
      Metrics.set queue_wait_g
        (Array.fold_left (fun acc j -> Float.max acc (t_drain -. j.enq)) 0.
           jobs_a
        *. 1e9);
      (* stage hooks: per-batch normalize/wal_append/maintain timings
         land on that batch's request trace; the group-wide fsync is
         attributed once to every committed batch, preceded by its
         group_wait (own maintain end → fsync start) — invariant 12 *)
      let maintain_end = Array.make (Array.length jobs_a) 0. in
      let hooks =
        if Reqtrace.enabled () then
          Some
            {
              Vm.batch_stage =
                (fun i name t0 t1 ->
                  Reqtrace.add_stage jobs_a.(i).rq name ~t0 ~t1;
                  if String.equal name "maintain" then maintain_end.(i) <- t1);
              Vm.group_stage =
                (fun name t0 t1 ->
                  Array.iteri
                    (fun i j ->
                      if maintain_end.(i) > 0. then begin
                        Reqtrace.add_stage j.rq "group_wait"
                          ~t0:maintain_end.(i) ~t1:t0;
                        Reqtrace.add_stage j.rq name ~t0 ~t1
                      end)
                    jobs_a);
            }
        else None
      in
      (* the group commit: normalize/log/maintain each batch, one fsync.
         The collector rides along and accumulates the group's exact net
         stored-count changes — the publisher's patch feed. *)
      let track = Changes.collector () in
      let results =
        Vm.apply_group ?hooks ~track t.vm (List.map (fun j -> j.changes) jobs)
      in
      let ok = List.length (List.filter Result.is_ok results) in
      let seq =
        match Vm.store_status t.vm with
        | Some st -> st.Ivm_store.Store.seq
        | None -> Atomic.get t.published_seq + ok
      in
      (* fsync'd → publish the new snapshot, then ack and fan out; until
         here no reader could see any batch of this group (invariant 11).
         Incremental: patch the spare shadow with the group's net deltas
         and rotate; full-copy fallback when the group was untracked or
         a stalled reader pins the spare. *)
      let t_pub0 = Unix.gettimeofday () in
      let track = if t.config.full_publish then None else Some track in
      ignore (Snap_pub.publish ?track t.pub : Snap_pub.mode);
      Snap_pub.refresh_gauges t.pub;
      Atomic.set t.published_seq seq;
      Atomic.incr t.group_commits;
      Metrics.inc commits_c;
      Metrics.add batches_c ok;
      Metrics.observe group_size_h (List.length jobs);
      Atomic.set t.committed_batches (Atomic.get t.committed_batches + ok);
      let t_pub1 = Unix.gettimeofday () in
      List.iter2
        (fun j res ->
          match res with
          | Ok deltas ->
            Reqtrace.add_stage j.rq "publish" ~t0:t_pub0 ~t1:t_pub1;
            route ?rq:j.rq t j.js
              (Protocol.Applied
                 {
                   seq;
                   deltas;
                   timings =
                     (if j.echo_timings then Reqtrace.timings j.rq else []);
                 })
          | Error msg ->
            route ?rq:j.rq t j.js
              (Protocol.Error { code = Protocol.Invalid_changes; message = msg }))
        jobs results;
      (* per-batch delta fan-out to subscribers (bounded per session —
         [route_delta] drops and dooms on overflow) *)
      let subscribers =
        Array.to_list t.pool
        |> List.concat_map (fun r ->
               Mutex.protect r.lock (fun () ->
                   List.filter (fun s -> s.alive && s.subs <> []) r.sessions))
      in
      if subscribers <> [] then
        List.iter
          (fun res ->
            match res with
            | Error _ -> ()
            | Ok deltas ->
              List.iter
                (fun (pred, delta) ->
                  List.iter
                    (fun s ->
                      if List.mem pred s.subs then
                        route_delta t s (Protocol.Delta { seq; pred; delta }))
                    subscribers)
                deltas)
          results
    end
  done

(* ---------------- accept domain ---------------- *)

let accept_loop (t : t) =
  while not (Atomic.get t.stopped) do
    match Unix.accept t.lsock with
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED | EINTR), _, _)
      ->
      ()
    | fd, _addr ->
      if Atomic.get t.stopped then (try Unix.close fd with _ -> ())
      else begin
        (try
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.client_timeout_s;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.client_timeout_s;
           Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        if Atomic.get t.live_sessions >= t.config.max_sessions then begin
          (* quota: refuse before a session exists; this fd was never
             shared, so writing here cannot race a reader *)
          (try
             Frame.write_fd fd
               (Protocol.encode_response
                  (Protocol.Error
                     {
                       code = Protocol.Quota_exceeded;
                       message =
                         Printf.sprintf "session limit %d reached"
                           t.config.max_sessions;
                     }))
           with _ -> ());
          Atomic.incr t.protocol_errors;
          Metrics.inc errors_c;
          try Unix.close fd with _ -> ()
        end
        else begin
          let sid = Atomic.fetch_and_add t.next_sid 1 in
          let s =
            { sid; fd; authed = false; subs = []; alive = true; outq = 0;
              doomed = false; reqs = 0; req_ns = 0; req_max_ns = 0 }
          in
          (* sid mod pool-size is the owner — [route] relies on it *)
          let r = t.pool.(sid mod Array.length t.pool) in
          Mutex.lock r.lock;
          r.sessions <- s :: r.sessions;
          Mutex.unlock r.lock;
          Atomic.incr t.live_sessions;
          Atomic.incr t.accepted;
          Metrics.inc accepted_c;
          Metrics.set sessions_g (float_of_int (Atomic.get t.live_sessions));
          poke r
        end
      end
  done

(* ---------------- lifecycle ---------------- *)

let running : t list ref = ref []
let running_lock = Mutex.create ()

let stop (t : t) =
  if not (Atomic.exchange t.stopped true) then begin
    (* wake the accept domain (shutdown alone does not reliably wake a
       blocked accept on Linux — same dance as Ivm_monitor) *)
    (try Unix.shutdown t.lsock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> Unix.close s)
         (fun () -> Unix.connect s t.wake_addr)
     with Unix.Unix_error _ -> ());
    (match t.accept_domain with
    | Some d ->
      Domain.join d;
      t.accept_domain <- None
    | None -> ());
    (* writer drains the remaining queue, then exits *)
    Mutex.lock t.qlock;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qlock;
    (match t.writer_domain with
    | Some d ->
      Domain.join d;
      t.writer_domain <- None
    | None -> ());
    (* readers say Bye and close their sessions *)
    Array.iter
      (fun r ->
        poke r;
        match r.domain with
        | Some d ->
          Domain.join d;
          r.domain <- None
        | None -> ())
      t.pool;
    Array.iter
      (fun r ->
        (try Unix.close r.wake_r with Unix.Unix_error _ -> ());
        try Unix.close r.wake_w with Unix.Unix_error _ -> ())
      t.pool;
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    Mutex.lock running_lock;
    running := List.filter (fun s -> s != t) !running;
    Mutex.unlock running_lock
  end

let at_exit_registered = ref false

let start ?(host = "127.0.0.1") ?(config = default_config) ~vm ~port:requested
    () : t =
  if config.readers < 1 then invalid_arg "Server.start: readers must be >= 1";
  (* a client disconnecting mid-write must raise EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, requested) in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lsock Unix.SO_REUSEADDR true;
     Unix.bind lsock addr;
     Unix.listen lsock 64
   with e ->
     Unix.close lsock;
     raise e);
  let port, wake_addr =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (bound, p) ->
      let reach =
        if bound = Unix.inet_addr_any then Unix.inet_addr_loopback else bound
      in
      (p, Unix.ADDR_INET (reach, p))
    | Unix.ADDR_UNIX _ as a -> (requested, a)
  in
  let pool =
    Array.init config.readers (fun idx ->
        let wake_r, wake_w = Unix.pipe () in
        Unix.set_nonblock wake_r;
        Unix.set_nonblock wake_w;
        {
          idx;
          lock = Mutex.create ();
          sessions = [];
          outbox = Queue.create ();
          wake_r;
          wake_w;
          domain = None;
        })
  in
  let seq0 =
    match Vm.store_status vm with
    | Some st -> st.Ivm_store.Store.seq
    | None -> 0
  in
  let t =
    {
      vm;
      config;
      lsock;
      port;
      wake_addr;
      pub =
        (* one pin cell per reader domain plus a spare out-of-band cell
           (index [config.readers]) for external holders — backup dumps,
           load harnesses — reachable through [publisher] *)
        Snap_pub.create ~max_wait_s:config.publish_max_wait_s
          ~readers:(config.readers + 1) vm;
      published_seq = Atomic.make seq0;
      stopped = Atomic.make false;
      pool;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      accept_domain = None;
      writer_domain = None;
      started_at = Unix.gettimeofday ();
      next_sid = Atomic.make 0;
      accepted = Atomic.make 0;
      live_sessions = Atomic.make 0;
      group_commits = Atomic.make 0;
      committed_batches = Atomic.make 0;
      deltas_pushed = Atomic.make 0;
      deltas_dropped = Atomic.make 0;
      protocol_errors = Atomic.make 0;
    }
  in
  Array.iter (fun r -> r.domain <- Some (Domain.spawn (fun () -> reader_loop t r))) pool;
  t.writer_domain <- Some (Domain.spawn (fun () -> writer_loop t));
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  Mutex.lock running_lock;
  running := t :: !running;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () -> List.iter stop !running)
  end;
  Mutex.unlock running_lock;
  t
