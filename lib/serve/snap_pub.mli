(** Incremental snapshot publication — epoch-pinned double buffering
    (ARCHITECTURE.md §18).

    Two shadow databases rotate behind an atomically published pointer.
    After each group commit the writer patches the spare shadow with the
    group's {e net tuple-count changes} (surfaced from the maintenance
    algorithms' commit sites via {!Ivm.Changes.collector}) and swaps it
    in: O(|Δ| · indexes) instead of the old O(|DB| + index rebuild)
    [Database.copy] per group.

    Reader safety is {e epoch pinning}: a reader stores the current
    epoch in its pin cell, {e then} fetches the published database; the
    writer patches a retired buffer only once every cell is idle or at
    an epoch ≥ the buffer's retirement epoch.  The rotate wait is
    bounded — a stalled reader makes the writer abandon the pinned
    buffer and publish a fresh full copy instead, so a published
    snapshot is {e never} mutated while any reader's epoch pins it
    (invariant 13) and no client can wedge the writer.

    Commits the delta feed cannot describe — recompute batches, rule
    changes / algorithm switches ({!Ivm.View_manager.state_version}), a
    replaced database identity, registered aggregate indexes — also
    fall back to a full copy (counted, observable on [/metrics] and
    [/statusz]). *)

module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Database = Ivm_eval.Database
module Json = Ivm_obs.Json

type t

type mode = Incremental | Full_copy

(** ["incremental"] / ["full_fallback"] — the [mode] label values of
    [ivm_serve_publish_total]. *)
val mode_name : mode -> string

(** [create ~readers vm] seeds both shadows from the manager's current
    database ([~with_indexes:false] copies).  [readers] is the number of
    pin cells — one per reader domain, addressed by index.
    [max_wait_s] (default 0.05) bounds the writer's rotate wait before
    it gives up on a pinned spare and full-copies. *)
val create : ?max_wait_s:float -> readers:int -> Vm.t -> t

(** [acquire t ~reader] pins reader [reader]'s cell at the current epoch
    and returns the published snapshot.  The snapshot is guaranteed
    unmutated until the matching {!release}.  Pin windows should span
    only the query evaluation, never socket writes. *)
val acquire : t -> reader:int -> Database.t

val release : t -> reader:int -> unit

(** The published snapshot without pinning — safe only where no publish
    can run concurrently (the writer domain, single-domain tests). *)
val current : t -> Database.t

(** Publish epoch: bumped once per {!publish}. *)
val epoch : t -> int

(** Publish the live database's state after a group commit (writer
    domain only).  With a complete [track] collector and no out-of-band
    mutation since the last publish, the spare is patched in place and
    swapped in ([Incremental]); otherwise a fresh full copy is published
    ([Full_copy]).  Observes [publish.rotate_wait] / [publish.patch]
    under [ivm_serve_stage_ns] and the publish-mode counters. *)
val publish : ?track:Changes.collector -> t -> mode

(** Epochs reader [i]'s pin trails the current epoch; 0 when idle. *)
val reader_lag : t -> int -> int

(** Refresh [ivm_serve_snapshot_age_seconds] and the per-reader
    [ivm_serve_reader_epoch_lag] gauges (the monitor's before-scrape
    hook). *)
val refresh_gauges : t -> unit

type stats = {
  publishes : int;
  incremental : int;
  full_copies : int;
  full_stalled : int;
}

val stats : t -> stats

(** The publisher block of [/statusz] (racy point-in-time reads, like
    the rest of the status document). *)
val status_json : t -> Json.t
