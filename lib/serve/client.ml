(* Blocking client for the ivm_serve protocol.  One socket, synchronous
   request/response; Delta pushes that arrive while a call is waiting
   for its reply are buffered and handed out by [next_delta]. *)

module Frame = Ivm_wire.Frame
module Relation = Ivm_relation.Relation

exception Server_error of Protocol.error_code * string

exception Unexpected of string

type t = {
  fd : Unix.file_descr;
  pending : (int * string * Relation.t) Queue.t;
  mutable hello_seq : int;
  mutable closed : bool;
}

let read_response c : Protocol.response =
  Protocol.decode_response (Frame.read_fd c.fd)

let send_request c (req : Protocol.request) =
  Frame.write_fd c.fd (Protocol.encode_request req)

(** Wait for the reply to the call in flight, buffering delta pushes. *)
let rec await c (expect : Protocol.response -> 'a option) : 'a =
  match read_response c with
  | Protocol.Delta { seq; pred; delta } ->
    Queue.add (seq, pred, delta) c.pending;
    await c expect
  | Protocol.Error { code; message } -> raise (Server_error (code, message))
  | Protocol.Bye ->
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    raise (Server_error (Protocol.Shutting_down, "server closed the session"))
  | resp -> (
    match expect resp with
    | Some v -> v
    | None ->
      raise
        (Unexpected
           (Printf.sprintf "unexpected response opcode 0x%02x"
              (Protocol.opcode_of_response resp))))

let connect ?(host = "127.0.0.1") ?(token = "") ~port () : t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let c = { fd; pending = Queue.create (); hello_seq = 0; closed = false } in
  (try
     send_request c (Protocol.Hello { version = Protocol.version; token });
     c.hello_seq <-
       await c (function
         | Protocol.Hello_ok { seq; _ } -> Some seq
         | _ -> None)
   with e ->
     (try Unix.close c.fd with Unix.Unix_error _ -> ());
     raise e);
  c

let seq c = c.hello_seq

let ping c =
  send_request c Protocol.Ping;
  await c (function Protocol.Pong -> Some () | _ -> None)

let query ?(trace = "") c body =
  send_request c (Protocol.Query { body; trace });
  await c (function
    | Protocol.Answer { columns; rows } -> Some (columns, rows)
    | _ -> None)

(* [trace = ""] sends byte-for-byte the v1 frame (no trailing field), so
   an unmodified server keeps working; a non-empty trace context opts
   the Applied reply into the per-stage timings *)
let apply ?(trace = "") c (changes : Protocol.changes) =
  send_request c (Protocol.Apply { changes; trace });
  await c (function
    | Protocol.Applied { seq; deltas; _ } -> Some (seq, deltas)
    | _ -> None)

let next_trace = Atomic.make 1

let apply_timed ?trace c (changes : Protocol.changes) =
  (* timings require a trace context, so make one up when none given *)
  let trace =
    match trace with
    | Some s when s <> "" -> s
    | _ -> Printf.sprintf "c-%d" (Atomic.fetch_and_add next_trace 1)
  in
  send_request c (Protocol.Apply { changes; trace });
  await c (function
    | Protocol.Applied { seq; deltas; timings } -> Some (seq, deltas, timings)
    | _ -> None)

let subscribe c pred =
  send_request c (Protocol.Subscribe pred);
  await c (function
    | Protocol.Sub_ok p when String.equal p pred -> Some ()
    | _ -> None)

let status c =
  send_request c Protocol.Status;
  await c (function Protocol.Status_reply json -> Some json | _ -> None)

let next_delta ?(timeout = 1.0) c : (int * string * Relation.t) option =
  if not (Queue.is_empty c.pending) then Some (Queue.pop c.pending)
  else if c.closed then None
  else
    match Unix.select [ c.fd ] [] [] timeout with
    | [], _, _ -> None
    | exception Unix.Unix_error (EINTR, _, _) -> None
    | _ -> (
      match read_response c with
      | Protocol.Delta { seq; pred; delta } -> Some (seq, pred, delta)
      | Protocol.Bye ->
        c.closed <- true;
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        None
      | Protocol.Error { code; message } -> raise (Server_error (code, message))
      | resp ->
        raise
          (Unexpected
             (Printf.sprintf "unsolicited response opcode 0x%02x"
                (Protocol.opcode_of_response resp))))

let close c =
  if not c.closed then begin
    c.closed <- true;
    (try
       send_request c Protocol.Close;
       (* drain until the Bye ack (buffering nothing — we are done) *)
       let rec drain () =
         match read_response c with
         | Protocol.Bye -> ()
         | _ -> drain ()
       in
       drain ()
     with _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end
