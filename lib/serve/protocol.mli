(** The [ivm_serve] wire protocol: opcode-tagged request/response
    messages over the shared {!Ivm_wire} codec, carried in
    {!Ivm_wire.Frame} envelopes (u32 length, u32 CRC-32, payload).

    [docs/PROTOCOL.md] specifies every byte — this module is its
    reference implementation, and [test/test_docs.ml] drift-checks the
    spec's opcode table against {!opcodes} and round-trips every opcode
    through the codec.  The first message on a connection must be
    [Hello] (magic {!magic}, version {!version}, auth token); everything
    else is rejected until the handshake succeeds. *)

module Relation = Ivm_relation.Relation

val magic : string

(** Protocol version, currently [1].  The server rejects a [Hello]
    carrying any other version with [Error Bad_version]. *)
val version : int

(** One change batch: per-predicate signed deltas, structurally
    [Ivm.Changes.t] and encoded exactly like a WAL record body. *)
type changes = (string * Relation.t) list

type error_code =
  | Bad_version  (** handshake version (or magic) not understood *)
  | Auth_failed  (** token did not match the server's *)
  | Bad_request  (** malformed or out-of-order message *)
  | Query_failed  (** query parse/safety/unknown-predicate failure *)
  | Invalid_changes  (** batch rejected by validation, nothing applied *)
  | Quota_exceeded  (** session or batch quota hit *)
  | Shutting_down  (** server is draining; retry elsewhere *)
  | Internal  (** unexpected server-side failure *)

val error_code_int : error_code -> int
val error_code_of_int : int -> error_code option
val error_code_name : error_code -> string

type request =
  | Hello of { version : int; token : string }
  | Ping
  | Query of { body : string; trace : string }
      (** [body]: ad-hoc Datalog body, e.g. ["hop(a, X)"].  [trace]: the
          optional trace context ([""] = absent, encoded as {e no}
          trailing field, so the bytes a v1 peer sends and expects are
          unchanged — docs/PROTOCOL.md §9) *)
  | Apply of { changes : changes; trace : string }
      (** one atomic batch; group-committed.  [trace] as in [Query]; a
          non-empty context also opts the [Applied] reply into stage
          timings *)
  | Subscribe of string  (** push per-batch deltas of this view *)
  | Status
  | Close

type response =
  | Hello_ok of { version : int; seq : int }
      (** [seq]: last durable WAL sequence number *)
  | Pong
  | Answer of { columns : string list; rows : Relation.t }
  | Applied of { seq : int; deltas : changes; timings : (string * int) list }
      (** [seq]: the group-commit sequence this batch is durable at.
          [timings]: per-stage nanoseconds ([[]] = absent on the wire),
          sent only when the request carried a trace context — a client
          that cannot decode the field never receives it *)
  | Sub_ok of string
  | Status_reply of string  (** a JSON document *)
  | Bye
  | Delta of { seq : int; pred : string; delta : Relation.t }
      (** pushed to subscribers after each committed batch *)
  | Error of { code : error_code; message : string }

(** The normative opcode table ([(code, name)]), in spec order; the one
    [docs/PROTOCOL.md] §3 must mirror row for row. *)
val opcodes : (int * string) list

val opcode_of_request : request -> int
val opcode_of_response : response -> int

(** Encode to a frame payload (the caller wraps it in
    {!Ivm_wire.Frame}). *)
val encode_request : request -> string

val encode_response : response -> string

(** Decode a verified frame payload.
    @raise Ivm_wire.Wire.Corrupt on a bad opcode, truncated body, or
    trailing bytes. *)
val decode_request : string -> request

val decode_response : string -> response
