(** Multicore delta evaluation: a process-global {!Pool} of domains plus
    the [parallel_map] primitive the maintenance algorithms fan out with.

    The paper's delta rules are embarrassingly parallel: each rewritten
    rule [Δ(p) :- s1ν & … & Δ(si) & … & sn] (Definition 4.1) reads
    immutable old/new views and emits an independent delta, combined only
    at the [⊎] step.  The algorithms therefore package each maintenance
    phase as an array of read-only thunks, run them here, and ⊎-merge the
    per-thunk results sequentially in fixed task order.  Committed view
    states are identical whatever the domain count because [⊎] sums
    counts per tuple — commutative and associative — so neither the
    domain-count-dependent chunking nor the merge order affects the
    merged content (the determinism property suite pins this; see
    [Ivm_eval.Par_eval]).

    The domain count is a process-global knob, default 1 (fully
    sequential, no pool, no worker domains):

    - {!set_domains} picks the count; the pool is (re)built lazily on the
      next parallel batch and the old one joined;
    - the [IVM_DOMAINS] environment variable seeds the default, so test
      and CI runs can force every maintenance path through 1 or 4 domains
      without touching code;
    - [View_manager.create ~domains], the shell's [--domains] and the
      bench runner's [--domains] all route here.

    Thunks must follow the read-only discipline: shared relations and
    caches are only read (the caches are pre-populated sequentially by
    each algorithm's prepare step; demand-built relation indexes are
    published atomically by [Ivm_relation.Relation]), and every write
    lands in thunk-private state. *)

module Pool = Pool

let env_default () =
  match Sys.getenv_opt "IVM_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

let requested = ref (env_default ())
let current : Pool.t option ref = ref None

(** The configured domain count (≥ 1). *)
let domains () = !requested

(** True when evaluation is fully sequential (one domain). *)
let sequential () = !requested <= 1

(** Set the domain count used by all subsequent maintenance batches.
    Takes effect lazily: the pool is rebuilt on the next parallel batch;
    an existing pool of a different size is shut down then. *)
let set_domains n = requested := max 1 n

let shutdown () =
  match !current with
  | Some p ->
    Pool.shutdown p;
    current := None
  | None -> ()

(* Worker domains would keep the process alive (the runtime joins them at
   exit); tear the pool down when the program ends. *)
let () = at_exit shutdown

let pool () =
  match !current with
  | Some p when Pool.size p = !requested -> p
  | _ ->
    shutdown ();
    let p = Pool.create ~domains:!requested in
    current := Some p;
    p

(** [parallel_map tasks] — run the thunks (on the global pool when more
    than one domain is configured) and return their results in task
    order.  Single-domain or single-task batches run inline, in order. *)
let parallel_map (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if sequential () || n = 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results = Array.make n None in
    Ivm_obs.Trace.span "par.fanout"
      ~args:(fun () ->
        [ ("tasks", string_of_int n); ("domains", string_of_int !requested) ])
      (fun () ->
        Pool.run_tasks (pool ()) ~n (fun i -> results.(i) <- Some (tasks.(i) ())));
    Array.map (function Some x -> x | None -> assert false) results
  end
