(** A fixed-size pool of OCaml 5 domains executing batches of independent
    tasks.

    The pool holds [size - 1] worker domains; the caller of {!run_tasks}
    is the remaining participant, so a pool of size 1 has no workers at
    all and runs every batch inline — byte-for-byte the sequential path.

    A batch is an indexed set of tasks [run 0 .. run (n-1)].  Participants
    claim indexes from a shared atomic cursor (work stealing at task
    granularity), so load balances even when task costs are skewed.  The
    caller blocks until every claimed task has {e finished} — not merely
    been claimed — which gives the happens-before edge that makes the
    tasks' writes (each into its own result slot) visible to the caller.

    Determinism contract: the pool never reorders results — tasks are
    identified by index and callers collect per-index outputs, so any
    order-sensitive combining (the ⊎-merge of per-rule deltas) happens
    sequentially in the caller, in fixed index order.  What the pool does
    {e not} promise is the order of side effects {e during} a batch;
    tasks must therefore only read shared state and write task-private
    state (see [Ivm_eval.Par_eval] for the evaluation-side discipline).

    The first exception raised by a task is re-raised in the caller after
    the batch drains; remaining tasks still run (they are independent by
    contract, and letting the batch drain keeps the pool reusable).

    Observability: [ivm_par_pool_size] gauge, [ivm_par_batches_total]
    counter, and per-participant [ivm_par_tasks_total{domain=i}] counters
    (domain 0 is the caller).  The pool's counters are pre-registered at
    pool creation and each is bumped by exactly one domain, so they stay
    race-free without atomics; the evaluator's work counters, bumped from
    inside tasks by every domain, are per-domain cells merged on read
    ([Ivm_eval.Stats]). *)

module Metrics = Ivm_obs.Metrics

type job = {
  id : int;
  run : int -> unit;
  n : int;
  next : int Atomic.t;  (** next unclaimed task index *)
  completed : int Atomic.t;  (** tasks finished (not just claimed) *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
      (** first task failure; written under the pool lock *)
}

type t = {
  size : int;  (** participants: worker domains + the calling domain *)
  mutable workers : unit Domain.t array;
  lock : Mutex.t;
  work_cv : Condition.t;  (** a new job was posted, or shutdown *)
  done_cv : Condition.t;  (** the current job's last task finished *)
  mutable job : job option;
  mutable next_id : int;
  mutable stopped : bool;
  task_counters : Metrics.counter array;
  batches_c : Metrics.counter;
}

let size t = t.size

(* ---------------- task execution ---------------- *)

(** Claim and run tasks of [j] until the cursor runs out.  Called by
    workers and by the posting caller alike. *)
let drain pool j slot =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add j.next 1 in
    if i >= j.n then continue_ := false
    else begin
      Metrics.inc pool.task_counters.(slot);
      (try j.run i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock pool.lock;
         if j.failed = None then j.failed <- Some (e, bt);
         Mutex.unlock pool.lock);
      if Atomic.fetch_and_add j.completed 1 = j.n - 1 then begin
        (* last task: wake the caller waiting in run_tasks *)
        Mutex.lock pool.lock;
        Condition.broadcast pool.done_cv;
        Mutex.unlock pool.lock
      end
    end
  done

let worker pool slot =
  let last_id = ref (-1) in
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    while
      (not pool.stopped)
      &&
      match pool.job with
      | Some j -> j.id = !last_id  (* already drained this one *)
      | None -> true
    do
      Condition.wait pool.work_cv pool.lock
    done;
    if pool.stopped then begin
      Mutex.unlock pool.lock;
      running := false
    end
    else begin
      let j = match pool.job with Some j -> j | None -> assert false in
      last_id := j.id;
      Mutex.unlock pool.lock;
      drain pool j slot
    end
  done

(** Run the batch [run 0 .. run (n-1)] on all participants; returns when
    every task has finished.  Re-raises the first task exception.  Not
    reentrant: tasks must not call {!run_tasks} on the same pool. *)
let run_tasks pool ~n (run : int -> unit) : unit =
  if n > 0 then begin
    Metrics.inc pool.batches_c;
    if pool.size = 1 || n = 1 then
      for i = 0 to n - 1 do
        Metrics.inc pool.task_counters.(0);
        run i
      done
    else begin
      Mutex.lock pool.lock;
      pool.next_id <- pool.next_id + 1;
      let j =
        { id = pool.next_id; run; n; next = Atomic.make 0;
          completed = Atomic.make 0; failed = None }
      in
      pool.job <- Some j;
      Condition.broadcast pool.work_cv;
      Mutex.unlock pool.lock;
      drain pool j 0;
      Mutex.lock pool.lock;
      while Atomic.get j.completed < j.n do
        Condition.wait pool.done_cv pool.lock
      done;
      pool.job <- None;
      Mutex.unlock pool.lock;
      match j.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ---------------- lifecycle ---------------- *)

let create ~domains : t =
  let size = max 1 domains in
  let pool =
    {
      size;
      workers = [||];
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      job = None;
      next_id = 0;
      stopped = false;
      task_counters =
        Array.init size (fun i ->
            Metrics.counter
              ~labels:[ ("domain", string_of_int i) ]
              "ivm_par_tasks_total");
      batches_c = Metrics.counter "ivm_par_batches_total";
    }
  in
  Metrics.set (Metrics.gauge "ivm_par_pool_size") (float_of_int size);
  if size > 1 then
    pool.workers <-
      Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker pool (i + 1)));
  pool

(** Stop and join the worker domains.  The pool must be idle. *)
let shutdown pool =
  if Array.length pool.workers > 0 then begin
    Mutex.lock pool.lock;
    pool.stopped <- true;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end
