(** Recursive-descent parser for the SQL subset.

    {v
      statement := CREATE TABLE name "(" cols ")" ";"
                 | CREATE VIEW name [ "(" cols ")" ] AS query ";"
                 | INSERT INTO name VALUES tuple ("," tuple)* ";"
      query     := select (UNION select)*
      select    := SELECT [DISTINCT] item ("," item)* FROM tbl alias?
                   ("," tbl alias?)* [WHERE cond] [GROUP BY colrefs]
      item      := expr | (MIN|MAX|SUM|AVG) "(" expr ")" | COUNT "(" "*" ")"
      cond      := atom_cond (AND atom_cond)*
      atom_cond := expr cmp expr | NOT EXISTS "(" SELECT STAR FROM tbl alias?
                   [WHERE cond] ")"
    v} *)

open Sql_ast
module Value = Ivm_relation.Value
module Lex = Sql_lexer

exception Parse_error of string

type state = { toks : Lex.token array; mutable pos : int }

let peek s = s.toks.(s.pos)
let advance s = s.pos <- s.pos + 1

let fail s msg =
  raise
    (Parse_error
       (Printf.sprintf "%s (found %s)" msg (Lex.token_to_string (peek s))))

let expect s tok what = if peek s = tok then advance s else fail s ("expected " ^ what)
let expect_kw s kw = expect s (Lex.KW kw) kw

let ident s =
  match peek s with
  | Lex.IDENT name ->
    advance s;
    name
  | _ -> fail s "expected an identifier"

(* ------------------------------------------------------------------ *)

let rec parse_expr s = parse_additive s

and parse_additive s =
  let rec loop acc =
    match peek s with
    | Lex.PLUS ->
      advance s;
      loop (Sadd (acc, parse_multiplicative s))
    | Lex.MINUS ->
      advance s;
      loop (Ssub (acc, parse_multiplicative s))
    | _ -> acc
  in
  loop (parse_multiplicative s)

and parse_multiplicative s =
  let rec loop acc =
    match peek s with
    | Lex.STAR ->
      advance s;
      loop (Smul (acc, parse_unary s))
    | Lex.SLASH ->
      advance s;
      loop (Sdiv (acc, parse_unary s))
    | _ -> acc
  in
  loop (parse_unary s)

and parse_unary s =
  match peek s with
  | Lex.MINUS ->
    advance s;
    Sneg (parse_unary s)
  | _ -> parse_primary s

and parse_primary s =
  match peek s with
  | Lex.INT n ->
    advance s;
    Sconst (Value.Int n)
  | Lex.FLOAT f ->
    advance s;
    Sconst (Value.Float f)
  | Lex.STRING str ->
    advance s;
    Sconst (Value.str str)
  | Lex.IDENT name ->
    advance s;
    if peek s = Lex.DOT then begin
      advance s;
      let col = ident s in
      Scol { table = Some name; column = col }
    end
    else Scol { table = None; column = name }
  | Lex.LPAREN ->
    advance s;
    let e = parse_expr s in
    expect s Lex.RPAREN "')'";
    e
  | _ -> fail s "expected an expression"

let agg_of_kw = function
  | "MIN" -> Some Ivm_datalog.Ast.Min
  | "MAX" -> Some Ivm_datalog.Ast.Max
  | "SUM" -> Some Ivm_datalog.Ast.Sum
  | "AVG" -> Some Ivm_datalog.Ast.Avg
  | "COUNT" -> Some Ivm_datalog.Ast.Count
  | _ -> None

let parse_item s =
  match peek s with
  | Lex.KW kw when agg_of_kw kw <> None ->
    let fn = Option.get (agg_of_kw kw) in
    advance s;
    expect s Lex.LPAREN "'('";
    let arg =
      if peek s = Lex.STAR then begin
        advance s;
        None
      end
      else Some (parse_expr s)
    in
    expect s Lex.RPAREN "')'";
    Agg (fn, arg)
  | _ -> Plain (parse_expr s)

let cmp_of_token = function
  | Lex.EQ -> Some Ivm_datalog.Ast.Eq
  | Lex.NEQ -> Some Ivm_datalog.Ast.Neq
  | Lex.LT -> Some Ivm_datalog.Ast.Lt
  | Lex.LE -> Some Ivm_datalog.Ast.Le
  | Lex.GT -> Some Ivm_datalog.Ast.Gt
  | Lex.GE -> Some Ivm_datalog.Ast.Ge
  | _ -> None

let parse_table_ref s =
  let table = ident s in
  match peek s with
  | Lex.IDENT alias ->
    advance s;
    (table, alias)
  | _ -> (table, table)

let rec parse_cond s =
  let rec loop acc =
    match peek s with
    | Lex.KW "AND" ->
      advance s;
      loop (And (acc, parse_atom_cond s))
    | _ -> acc
  in
  loop (parse_atom_cond s)

and parse_atom_cond s =
  match peek s with
  | Lex.KW "NOT" ->
    advance s;
    expect_kw s "EXISTS";
    expect s Lex.LPAREN "'('";
    expect_kw s "SELECT";
    (if peek s = Lex.STAR then advance s
     else
       (* allow SELECT 1 or a column — its value is irrelevant *)
       ignore (parse_expr s));
    expect_kw s "FROM";
    let sub_table, sub_alias = parse_table_ref s in
    let sub_where =
      match peek s with
      | Lex.KW "WHERE" ->
        advance s;
        Some (parse_cond s)
      | _ -> None
    in
    expect s Lex.RPAREN "')' closing NOT EXISTS";
    Not_exists { sub_table; sub_alias; sub_where }
  | _ -> (
    let a = parse_expr s in
    match cmp_of_token (peek s) with
    | Some op ->
      advance s;
      let b = parse_expr s in
      Cmp (a, op, b)
    | None -> fail s "expected a comparison operator")

let parse_col_ref s =
  match parse_expr s with
  | Scol c -> c
  | _ -> fail s "expected a column reference"

let rec parse_query s =
  let sel = parse_select s in
  match peek s with
  | Lex.KW "UNION" ->
    advance s;
    Union (Select sel, parse_query s)
  | _ -> Select sel

and parse_select s =
  expect_kw s "SELECT";
  let distinct =
    if peek s = Lex.KW "DISTINCT" then begin
      advance s;
      true
    end
    else false
  in
  let rec items acc =
    let it = parse_item s in
    if peek s = Lex.COMMA then begin
      advance s;
      items (it :: acc)
    end
    else List.rev (it :: acc)
  in
  let items = items [] in
  expect_kw s "FROM";
  let rec tables acc =
    let t = parse_table_ref s in
    if peek s = Lex.COMMA then begin
      advance s;
      tables (t :: acc)
    end
    else List.rev (t :: acc)
  in
  let from = tables [] in
  let where =
    match peek s with
    | Lex.KW "WHERE" ->
      advance s;
      Some (parse_cond s)
    | _ -> None
  in
  let group_by =
    match peek s with
    | Lex.KW "GROUP" ->
      advance s;
      expect_kw s "BY";
      let rec cols acc =
        let c = parse_col_ref s in
        if peek s = Lex.COMMA then begin
          advance s;
          cols (c :: acc)
        end
        else List.rev (c :: acc)
      in
      cols []
    | _ -> []
  in
  { distinct; items; from; where; group_by }

let parse_value s =
  match peek s with
  | Lex.INT n ->
    advance s;
    Value.Int n
  | Lex.FLOAT f ->
    advance s;
    Value.Float f
  | Lex.STRING str ->
    advance s;
    Value.str str
  | Lex.MINUS ->
    advance s;
    (match peek s with
    | Lex.INT n ->
      advance s;
      Value.Int (-n)
    | Lex.FLOAT f ->
      advance s;
      Value.Float (-.f)
    | _ -> fail s "expected a number after '-'")
  | Lex.IDENT name ->
    (* bare identifiers in VALUES are symbolic constants, matching the
       paper's link(a, b) style *)
    advance s;
    Value.str name
  | _ -> fail s "expected a literal value"

let parse_opt_where s =
  match peek s with
  | Lex.KW "WHERE" ->
    advance s;
    Some (parse_cond s)
  | _ -> None

let parse_statement s =
  match peek s with
  | Lex.KW "SELECT" ->
    let sel = parse_select s in
    expect s Lex.SEMI "';'";
    Select_stmt sel
  | Lex.KW "DELETE" ->
    advance s;
    expect_kw s "FROM";
    let table = ident s in
    let where = parse_opt_where s in
    expect s Lex.SEMI "';'";
    Delete (table, where)
  | Lex.KW "UPDATE" ->
    advance s;
    let table = ident s in
    expect_kw s "SET";
    let rec assignments acc =
      let col = ident s in
      expect s Lex.EQ "'='";
      let e = parse_expr s in
      if peek s = Lex.COMMA then begin
        advance s;
        assignments ((col, e) :: acc)
      end
      else List.rev ((col, e) :: acc)
    in
    let sets = assignments [] in
    let where = parse_opt_where s in
    expect s Lex.SEMI "';'";
    Update (table, sets, where)
  | Lex.KW "CREATE" -> (
    advance s;
    match peek s with
    | Lex.KW "TABLE" ->
      advance s;
      let name = ident s in
      expect s Lex.LPAREN "'('";
      let rec cols acc =
        let c = ident s in
        if peek s = Lex.COMMA then begin
          advance s;
          cols (c :: acc)
        end
        else List.rev (c :: acc)
      in
      let cols = cols [] in
      expect s Lex.RPAREN "')'";
      expect s Lex.SEMI "';'";
      Create_table (name, cols)
    | Lex.KW "VIEW" ->
      advance s;
      let name = ident s in
      let cols =
        if peek s = Lex.LPAREN then begin
          advance s;
          let rec cols acc =
            let c = ident s in
            if peek s = Lex.COMMA then begin
              advance s;
              cols (c :: acc)
            end
            else List.rev (c :: acc)
          in
          let cs = cols [] in
          expect s Lex.RPAREN "')'";
          Some cs
        end
        else None
      in
      expect_kw s "AS";
      (* tolerate an optional parenthesized query *)
      let parenthesized = peek s = Lex.LPAREN in
      if parenthesized then advance s;
      let q = parse_query s in
      if parenthesized then expect s Lex.RPAREN "')'";
      expect s Lex.SEMI "';'";
      Create_view (name, cols, q)
    | _ -> fail s "expected TABLE or VIEW after CREATE")
  | Lex.KW "INSERT" ->
    advance s;
    expect_kw s "INTO";
    let name = ident s in
    expect_kw s "VALUES";
    let rec tuples acc =
      expect s Lex.LPAREN "'('";
      let rec vals acc =
        let v = parse_value s in
        if peek s = Lex.COMMA then begin
          advance s;
          vals (v :: acc)
        end
        else List.rev (v :: acc)
      in
      let tuple = vals [] in
      expect s Lex.RPAREN "')'";
      if peek s = Lex.COMMA then begin
        advance s;
        tuples (tuple :: acc)
      end
      else List.rev (tuple :: acc)
    in
    let ts = tuples [] in
    expect s Lex.SEMI "';'";
    Insert (name, ts)
  | _ -> fail s "expected CREATE or INSERT"

(** Parse a script of ';'-terminated statements. *)
let parse_script (src : string) : statement list =
  let s = { toks = Array.of_list (Lex.tokenize src); pos = 0 } in
  let rec loop acc =
    if peek s = Lex.EOF then List.rev acc else loop (parse_statement s :: acc)
  in
  loop []
