(** A live SQL session over an incrementally maintained database: the
    schema script (CREATE TABLE / CREATE VIEW / INSERT) builds the view
    manager, and {!exec} then runs statements against it —

    - [INSERT] / [DELETE FROM … WHERE] / [UPDATE … SET … WHERE] become
      change sets routed through the maintenance algorithm (updates are
      deletion ⊎ insertion, per the paper);
    - [CREATE VIEW] at run time goes through rule insertion (Section 7's
      view redefinition) — existing views are not recomputed;
    - ad-hoc [SELECT]s evaluate against the materialized relations.

    This is what makes the reproduction a {e database}: the SQL of
    Example 1.1, maintained live. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Query = Ivm_eval.Query
module Database = Ivm_eval.Database
open Sql_ast

exception Session_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Session_error s)) fmt

type t = {
  vm : Vm.t;
  schemas : (string, string list) Hashtbl.t;  (** tables and views *)
  base_tables : (string, unit) Hashtbl.t;
}

type outcome =
  | Done of string  (** a human-readable confirmation *)
  | Deltas of (string * Relation.t) list  (** per-view changes of a DML *)
  | Rows of Query.result  (** a SELECT's answers *)

(** Build a session from a schema script (see {!Sql_translate.translate}). *)
let of_script ?semantics ?algorithm (src : string) : t =
  let r = Sql_translate.translate src in
  let vm = Sql_translate.view_manager ?semantics ?algorithm src in
  let schemas = Hashtbl.create 16 in
  let base_tables = Hashtbl.create 16 in
  List.iter
    (fun (name, cols) ->
      Hashtbl.replace schemas name cols;
      Hashtbl.replace base_tables name ())
    r.Sql_translate.tables;
  List.iter (fun (name, cols) -> Hashtbl.replace schemas name cols) r.Sql_translate.views;
  { vm; schemas; base_tables }

let manager t = t.vm

let columns_of t name =
  match Hashtbl.find_opt t.schemas name with
  | Some cols -> cols
  | None -> fail "unknown table or view %s" name

let check_base t name =
  if not (Hashtbl.mem t.base_tables name) then
    fail "%s is a view; DML applies to base tables" name

(* ------------------------------------------------------------------ *)
(* WHERE evaluation over a single stored tuple                          *)
(* ------------------------------------------------------------------ *)

let rec eval_sexpr lookup = function
  | Scol c -> lookup c
  | Sconst v -> v
  | Sadd (a, b) -> Value.add (eval_sexpr lookup a) (eval_sexpr lookup b)
  | Ssub (a, b) -> Value.sub (eval_sexpr lookup a) (eval_sexpr lookup b)
  | Smul (a, b) -> Value.mul (eval_sexpr lookup a) (eval_sexpr lookup b)
  | Sdiv (a, b) -> Value.div (eval_sexpr lookup a) (eval_sexpr lookup b)
  | Sneg a -> Value.neg (eval_sexpr lookup a)

let rec eval_cond lookup = function
  | Cmp (a, op, b) ->
    Ivm_eval.Rule_eval.cmp_holds op (eval_sexpr lookup a) (eval_sexpr lookup b)
  | And (a, b) -> eval_cond lookup a && eval_cond lookup b
  | Not_exists _ -> fail "NOT EXISTS is not supported in DML WHERE clauses"

let row_lookup t table (tup : Tuple.t) (c : col_ref) : Value.t =
  (match c.table with
  | Some a when a <> table -> fail "unknown alias %s in DML over %s" a table
  | _ -> ());
  let cols = columns_of t table in
  match List.find_index (String.equal c.column) cols with
  | Some i -> Tuple.get tup i
  | None -> fail "table %s has no column %s" table c.column

(** Stored tuples of [table] satisfying [where]. *)
let matching_rows t table where : Tuple.t list =
  let stored = Vm.relation t.vm table in
  Relation.fold
    (fun tup _ acc ->
      let lookup c = row_lookup t table tup c in
      match where with
      | None -> tup :: acc
      | Some cond -> if eval_cond lookup cond then tup :: acc else acc)
    stored []

(* ------------------------------------------------------------------ *)
(* Statement execution                                                  *)
(* ------------------------------------------------------------------ *)

let exec_statement t (st : statement) : outcome =
  match st with
  | Create_table (name, _) ->
    fail "CREATE TABLE %s: declare tables in the initial schema script" name
  | Insert (name, tuples) ->
    check_base t name;
    let cols = columns_of t name in
    List.iter
      (fun vals ->
        if List.length vals <> List.length cols then
          fail "INSERT INTO %s: expected %d values" name (List.length cols))
      tuples;
    Deltas
      (Vm.insert t.vm name (List.map Tuple.of_list tuples))
  | Delete (name, where) ->
    check_base t name;
    let victims = matching_rows t name where in
    if victims = [] then Done "0 rows deleted"
    else Deltas (Vm.delete t.vm name victims)
  | Update (name, sets, where) ->
    check_base t name;
    let cols = columns_of t name in
    List.iter
      (fun (col, _) ->
        if not (List.mem col cols) then
          fail "UPDATE %s: no column %s" name col)
      sets;
    let victims = matching_rows t name where in
    let changes =
      List.fold_left
        (fun acc old_tuple ->
          let lookup c = row_lookup t name old_tuple c in
          let new_tuple =
            Tuple.of_list
              (List.mapi
                 (fun i col ->
                   match List.assoc_opt col sets with
                   | Some e -> eval_sexpr lookup e
                   | None -> Tuple.get old_tuple i)
                 cols)
          in
          Changes.merge acc
            (Changes.update (Vm.program t.vm) name ~old_tuple ~new_tuple))
        [] victims
    in
    if victims = [] then Done "0 rows updated" else Deltas (Vm.apply t.vm changes)
  | Select_stmt sel ->
    let env = { Sql_translate.schemas = t.schemas } in
    let gen = { Sql_translate.aux_count = 0; extra_rules = [] } in
    let columns = Sql_translate.derived_columns sel in
    let rule =
      Sql_translate.translate_select env gen ~view_name:"$select$"
        ~head_cols:None sel
    in
    if gen.Sql_translate.extra_rules <> [] then
      fail
        "this SELECT needs auxiliary views (GROUP BY or NOT EXISTS): \
         CREATE VIEW it instead";
    Rows (Query.run_rule (Vm.database t.vm) rule ~columns)
  | Create_view (name, cols, q) ->
    if Hashtbl.mem t.schemas name then fail "duplicate view %s" name;
    let env = { Sql_translate.schemas = t.schemas } in
    let gen = { Sql_translate.aux_count = 0; extra_rules = [] } in
    let sels = Sql_translate.selects_of q in
    let view_cols =
      match cols with
      | Some cs -> cs
      | None -> Sql_translate.derived_columns (List.hd sels)
    in
    let main_rules =
      List.map
        (fun sel ->
          if List.length sel.items <> List.length view_cols then
            fail "view %s: UNION branches disagree on column count" name;
          Sql_translate.translate_select env gen ~view_name:name ~head_cols:cols
            sel)
        sels
    in
    (* auxiliary views first, then the view's own rules; each addition is
       maintained incrementally *)
    List.iter (Vm.add_rule t.vm) (gen.Sql_translate.extra_rules @ main_rules);
    Hashtbl.replace t.schemas name view_cols;
    Done (Printf.sprintf "view %s materialized" name)

(** Execute one ';'-terminated statement. *)
let exec (t : t) (src : string) : outcome =
  let src = String.trim src in
  let src =
    if String.length src > 0 && src.[String.length src - 1] = ';' then src
    else src ^ ";"
  in
  match Sql_parser.parse_script src with
  | [ st ] -> exec_statement t st
  | _ -> fail "exec runs exactly one statement; use exec_script"

(** Execute a multi-statement script; returns the outcomes in order. *)
let exec_script (t : t) (src : string) : outcome list =
  List.map (exec_statement t) (Sql_parser.parse_script src)

let pp_outcome ppf = function
  | Done msg -> Format.fprintf ppf "%s@." msg
  | Deltas [] -> Format.fprintf ppf "(no view changed)@."
  | Deltas ds ->
    List.iter
      (fun (view, delta) -> Format.fprintf ppf "Δ%s = %a@." view Relation.pp delta)
      ds
  | Rows r -> Query.pp ppf r
