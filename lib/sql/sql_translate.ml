(** Translation of the SQL subset to Datalog rules — the equivalence the
    paper leans on ("Datalog extended with stratified negation and
    aggregation can be mapped to a class of recursive SQL queries, and vice
    versa [Mum91]", Section 3).

    One SELECT becomes one rule: FROM entries become positive atoms whose
    argument variables are the equivalence classes of column equalities in
    WHERE (so joins probe indexes rather than filter), remaining conditions
    become comparison literals, NOT EXISTS subqueries become auxiliary
    projection views used under negation, and GROUP BY with one aggregate
    item becomes an auxiliary join view wrapped in a GROUPBY literal.
    UNION branches become additional rules for the same view predicate. *)

open Sql_ast
module Value = Ivm_relation.Value
module Ast = Ivm_datalog.Ast

exception Translate_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Translate_error s)) fmt

type result = {
  rules : Ast.rule list;
  tables : (string * string list) list;  (** base tables: name, columns *)
  views : (string * string list) list;  (** views: name, columns *)
  facts : (string * Value.t list list) list;
  distinct_views : string list;
      (** views declared SELECT DISTINCT: per-view set semantics, §5.1 *)
}

(* ------------------------------------------------------------------ *)
(* Union-find over (alias, column) cells                                *)
(* ------------------------------------------------------------------ *)

type cells = {
  ids : (string * string, int) Hashtbl.t;
  mutable parent : int array;
  mutable const : Value.t option array;
  mutable n : int;
}

let cells_create () =
  { ids = Hashtbl.create 16; parent = Array.make 16 0; const = Array.make 16 None; n = 0 }

let cell_id cs key =
  match Hashtbl.find_opt cs.ids key with
  | Some i -> i
  | None ->
    let i = cs.n in
    if i >= Array.length cs.parent then begin
      let parent = Array.make (2 * (i + 1)) 0 in
      Array.blit cs.parent 0 parent 0 i;
      let const = Array.make (2 * (i + 1)) None in
      Array.blit cs.const 0 const 0 i;
      cs.parent <- parent;
      cs.const <- const
    end;
    cs.parent.(i) <- i;
    cs.n <- i + 1;
    Hashtbl.replace cs.ids key i;
    i

let rec find cs i = if cs.parent.(i) = i then i else find cs (cs.parent.(i))

(** Returns [false] when merging two classes pinned to different
    constants — the condition is unsatisfiable. *)
let union_cells cs i j =
  let ri = find cs i and rj = find cs j in
  if ri = rj then true
  else begin
    let ok =
      match cs.const.(ri), cs.const.(rj) with
      | Some a, Some b -> Value.equal a b
      | _ -> true
    in
    cs.parent.(ri) <- rj;
    (match cs.const.(ri), cs.const.(rj) with
    | Some a, None -> cs.const.(rj) <- Some a
    | _ -> ());
    ok
  end

let pin_const cs i v =
  let r = find cs i in
  match cs.const.(r) with
  | None ->
    cs.const.(r) <- Some v;
    true
  | Some w -> Value.equal v w

(* ------------------------------------------------------------------ *)

type env = { schemas : (string, string list) Hashtbl.t }

let schema env table =
  match Hashtbl.find_opt env.schemas table with
  | Some cols -> cols
  | None -> fail "unknown table or view %s" table

(** Resolve a column reference against the FROM aliases. *)
let resolve_col ~from_schemas (c : col_ref) : string * string =
  match c.table with
  | Some alias ->
    if not (List.mem_assoc alias from_schemas) then
      fail "unknown alias %s" alias;
    if not (List.mem c.column (List.assoc alias from_schemas)) then
      fail "table %s has no column %s" alias c.column;
    (alias, c.column)
  | None -> (
    match
      List.filter (fun (_, cols) -> List.mem c.column cols) from_schemas
    with
    | [ (alias, _) ] -> (alias, c.column)
    | [] -> fail "unknown column %s" c.column
    | _ -> fail "ambiguous column %s (qualify it with an alias)" c.column)

(* ------------------------------------------------------------------ *)

type gen = { mutable aux_count : int; mutable extra_rules : Ast.rule list }

let translate_select env gen ~view_name ~(head_cols : string list option)
    (sel : select) : Ast.rule =
  let from_schemas =
    List.map
      (fun (table, alias) -> (alias, schema env table))
      sel.from
  in
  (* duplicate alias check *)
  let aliases = List.map fst from_schemas in
  if List.length (List.sort_uniq compare aliases) <> List.length aliases then
    fail "duplicate alias in FROM of view %s" view_name;
  let cs = cells_create () in
  (* register every cell so variable numbering is deterministic *)
  List.iter
    (fun (alias, cols) -> List.iter (fun c -> ignore (cell_id cs (alias, c))) cols)
    from_schemas;
  (* Partition WHERE conjuncts. *)
  let leftovers = ref [] in
  let not_exists = ref [] in
  let satisfiable = ref true in
  let rec walk = function
    | None -> ()
    | Some (And (a, b)) ->
      walk (Some a);
      walk (Some b)
    | Some (Cmp (Scol a, Eq, Scol b)) ->
      let ca = cell_id cs (resolve_col ~from_schemas a) in
      let cb = cell_id cs (resolve_col ~from_schemas b) in
      if not (union_cells cs ca cb) then satisfiable := false
    | Some (Cmp (Scol a, Eq, Sconst v)) | Some (Cmp (Sconst v, Eq, Scol a)) ->
      let ca = cell_id cs (resolve_col ~from_schemas a) in
      if not (pin_const cs ca v) then satisfiable := false
    | Some (Cmp (a, op, b)) -> leftovers := (a, op, b) :: !leftovers
    | Some (Not_exists sub) -> not_exists := sub :: !not_exists
  in
  walk sel.where;
  (* Terms per cell. *)
  let term_of_cell key =
    let r = find cs (cell_id cs key) in
    match cs.const.(r) with
    | Some v -> Ast.Eterm (Ast.Const v)
    | None -> Ast.Eterm (Ast.Var (Printf.sprintf "V%d" r))
  in
  let rec expr_of = function
    | Scol c -> term_of_cell (resolve_col ~from_schemas c)
    | Sconst v -> Ast.Eterm (Ast.Const v)
    | Sadd (a, b) -> Ast.Eadd (expr_of a, expr_of b)
    | Ssub (a, b) -> Ast.Esub (expr_of a, expr_of b)
    | Smul (a, b) -> Ast.Emul (expr_of a, expr_of b)
    | Sdiv (a, b) -> Ast.Ediv (expr_of a, expr_of b)
    | Sneg a -> Ast.Eneg (expr_of a)
  in
  (* Body atoms. *)
  let atoms =
    List.map
      (fun (table, alias) ->
        let cols = schema env table in
        Ast.Lpos
          {
            Ast.pred = table;
            args = List.map (fun c -> term_of_cell (alias, c)) cols;
          })
      sel.from
  in
  let cmps =
    List.rev_map (fun (a, op, b) -> Ast.Lcmp (expr_of a, op, expr_of b)) !leftovers
  in
  let unsat = if !satisfiable then [] else
    [ Ast.Lcmp (Ast.Eterm (Ast.Const (Value.Int 0)), Ast.Eq,
                Ast.Eterm (Ast.Const (Value.Int 1))) ] in
  (* NOT EXISTS → auxiliary projection view + negated atom. *)
  let neg_lits =
    List.rev_map
      (fun sub ->
        gen.aux_count <- gen.aux_count + 1;
        let aux = Printf.sprintf "%s_notexists%d" view_name gen.aux_count in
        let sub_cols = schema env sub.sub_table in
        let sub_schemas = [ (sub.sub_alias, sub_cols) ] in
        let svar c = Ast.Eterm (Ast.Var ("S_" ^ c)) in
        (* split the subquery WHERE into correlations and internal filters *)
        let correlations = ref [] and internal = ref [] in
        let is_sub_col c =
          match c.table with
          | Some a -> a = sub.sub_alias
          | None -> List.mem c.column sub_cols
        in
        let rec swalk = function
          | None -> ()
          | Some (And (a, b)) ->
            swalk (Some a);
            swalk (Some b)
          | Some (Cmp (Scol sc, Eq, (Scol oc as outer))) when is_sub_col sc && not (is_sub_col oc) ->
            correlations := (sc, expr_of outer) :: !correlations
          | Some (Cmp ((Scol oc as outer), Eq, Scol sc)) when is_sub_col sc && not (is_sub_col oc) ->
            correlations := (sc, expr_of outer) :: !correlations
          | Some (Cmp (a, op, b)) ->
            (* internal condition over subquery columns only *)
            let rec sexpr_of = function
              | Scol c when is_sub_col c ->
                let _, col = resolve_col ~from_schemas:sub_schemas c in
                svar col
              | Scol c -> fail "NOT EXISTS: condition mixes %s with outer columns in an unsupported way" c.column
              | Sconst v -> Ast.Eterm (Ast.Const v)
              | Sadd (a, b) -> Ast.Eadd (sexpr_of a, sexpr_of b)
              | Ssub (a, b) -> Ast.Esub (sexpr_of a, sexpr_of b)
              | Smul (a, b) -> Ast.Emul (sexpr_of a, sexpr_of b)
              | Sdiv (a, b) -> Ast.Ediv (sexpr_of a, sexpr_of b)
              | Sneg a -> Ast.Eneg (sexpr_of a)
            in
            internal := Ast.Lcmp (sexpr_of a, op, sexpr_of b) :: !internal
          | Some (Not_exists _) -> fail "nested NOT EXISTS is not supported"
        in
        swalk sub.sub_where;
        let correlations = List.rev !correlations in
        let head_args =
          List.map
            (fun (sc, _) ->
              let _, col = resolve_col ~from_schemas:sub_schemas sc in
              svar col)
            correlations
        in
        let aux_rule =
          {
            Ast.head = { Ast.pred = aux; args = head_args };
            body =
              Ast.Lpos
                { Ast.pred = sub.sub_table; args = List.map svar sub_cols }
              :: List.rev !internal;
          }
        in
        gen.extra_rules <- gen.extra_rules @ [ aux_rule ];
        Ast.Lneg { Ast.pred = aux; args = List.map snd correlations })
      !not_exists
  in
  let base_body = atoms @ cmps @ unsat @ neg_lits in
  (* Aggregation? *)
  let aggs = List.filter (function Agg _ -> true | Plain _ -> false) sel.items in
  match aggs, sel.group_by with
  | [], [] ->
    let head_args =
      List.map
        (function
          | Plain e -> expr_of e
          | Agg _ -> assert false)
        sel.items
    in
    ignore head_cols;
    { Ast.head = { Ast.pred = view_name; args = head_args }; body = base_body }
  | [ Agg (fn, arg) ], group_by ->
    (* auxiliary join view: group columns then the aggregated expression *)
    gen.aux_count <- gen.aux_count + 1;
    let aux = Printf.sprintf "%s_group%d" view_name gen.aux_count in
    let group_terms = List.map (fun c -> term_of_cell (resolve_col ~from_schemas c)) group_by in
    let agg_expr =
      match arg with
      | Some e -> expr_of e
      | None -> Ast.Eterm (Ast.Const (Value.Int 0))
    in
    let aux_rule =
      {
        Ast.head = { Ast.pred = aux; args = group_terms @ [ agg_expr ] };
        body = base_body;
      }
    in
    gen.extra_rules <- gen.extra_rules @ [ aux_rule ];
    (* variables of the groupby literal *)
    let gvars = List.mapi (fun i _ -> Printf.sprintf "G%d" i) group_by in
    let rvar = "R" in
    let source =
      {
        Ast.pred = aux;
        args =
          List.map (fun v -> Ast.Eterm (Ast.Var v)) gvars
          @ [ Ast.Eterm (Ast.Var "C") ];
      }
    in
    let lit =
      Ast.Lagg
        {
          Ast.agg_source = source;
          agg_group_by = gvars;
          agg_result = rvar;
          agg_fn = fn;
          agg_arg = Ast.Eterm (Ast.Var "C");
        }
    in
    (* head follows the SELECT item order *)
    let group_cols_resolved = List.map (fun c -> resolve_col ~from_schemas c) group_by in
    let head_args =
      List.map
        (function
          | Agg _ -> Ast.Eterm (Ast.Var rvar)
          | Plain (Scol c) -> (
            let rc = resolve_col ~from_schemas c in
            match List.mapi (fun i g -> (i, g)) group_cols_resolved
                  |> List.find_opt (fun (_, g) -> g = rc)
            with
            | Some (i, _) -> Ast.Eterm (Ast.Var (List.nth gvars i))
            | None ->
              fail "view %s: column %s is selected but not in GROUP BY"
                view_name c.column)
          | Plain _ ->
            fail "view %s: non-column SELECT items must be aggregates under \
                  GROUP BY" view_name)
        sel.items
    in
    { Ast.head = { Ast.pred = view_name; args = head_args }; body = [ lit ] }
  | _ :: _ :: _, _ -> fail "view %s: at most one aggregate item is supported" view_name
  | [], _ :: _ -> fail "view %s: GROUP BY without an aggregate item" view_name
  | _ -> fail "view %s: unsupported SELECT shape" view_name

(** Column names a SELECT produces (for views without an explicit column
    list). *)
let derived_columns (sel : select) : string list =
  List.mapi
    (fun i item ->
      match item with
      | Plain (Scol c) -> c.column
      | Agg (fn, _) -> Ast.agg_fn_name fn
      | Plain _ -> Printf.sprintf "col%d" i)
    sel.items

let rec first_select = function Select s -> s | Union (a, _) -> first_select a

let rec selects_of = function
  | Select s -> [ s ]
  | Union (a, b) -> selects_of a @ selects_of b

(** Translate a full script.  Returns rules (views and auxiliaries), base
    table schemas, view schemas, and facts to load. *)
let translate (src : string) : result =
  let statements = Sql_parser.parse_script src in
  let env = { schemas = Hashtbl.create 16 } in
  let gen = { aux_count = 0; extra_rules = [] } in
  let tables = ref [] and views = ref [] and facts = ref [] and rules = ref [] in
  let distinct_views = ref [] in
  List.iter
    (fun st ->
      match st with
      | Create_table (name, cols) ->
        if Hashtbl.mem env.schemas name then fail "duplicate table %s" name;
        Hashtbl.replace env.schemas name cols;
        tables := (name, cols) :: !tables
      | Create_view (name, cols, q) ->
        if Hashtbl.mem env.schemas name then fail "duplicate view %s" name;
        let sels = selects_of q in
        let view_cols =
          match cols with Some cs -> cs | None -> derived_columns (List.hd sels)
        in
        List.iter
          (fun sel ->
            if List.length sel.items <> List.length view_cols then
              fail "view %s: UNION branches disagree on column count" name;
            let r = translate_select env gen ~view_name:name ~head_cols:cols sel in
            rules := r :: !rules)
          sels;
        Hashtbl.replace env.schemas name view_cols;
        if List.exists (fun sel -> sel.distinct) sels then
          distinct_views := name :: !distinct_views;
        views := (name, view_cols) :: !views
      | Insert (name, tuples) ->
        let cols = schema env name in
        List.iter
          (fun vals ->
            if List.length vals <> List.length cols then
              fail "INSERT INTO %s: expected %d values" name (List.length cols))
          tuples;
        facts := (name, tuples) :: !facts
      | Delete _ | Update _ | Select_stmt _ ->
        fail
          "DELETE/UPDATE/SELECT are runtime statements: run them through \
           Sql_session.exec (or the shell), not the schema script")
    statements;
  (* auxiliary rules registered under gen + main rules, in order *)
  {
    rules = gen.extra_rules @ List.rev !rules;
    tables = List.rev !tables;
    views = List.rev !views;
    facts = List.rev !facts;
    distinct_views = List.rev !distinct_views;
  }

(** One-call convenience: translate, build the program, load the facts,
    materialize, return a manager. *)
let view_manager ?semantics ?algorithm (src : string) : Ivm.View_manager.t =
  let r = translate src in
  let facts =
    List.map
      (fun (name, tuples) ->
        (name, List.map (fun vals -> Ivm_relation.Tuple.of_list vals) tuples))
      r.facts
  in
  let extra_base = List.map (fun (t, cols) -> (t, List.length cols)) r.tables in
  Ivm.View_manager.create ?semantics ?algorithm ~extra_base
    ~distinct:r.distinct_views ~facts r.rules
