(** Graph generators for the [link] relation the paper's examples revolve
    around.  Nodes are integers (as [Value.Int]); edges are 2-tuples, or
    3-tuples [(src, dst, cost)] for the aggregation workloads.

    Shapes:
    - {!random} — Erdős–Rényi-style: [m] edges drawn uniformly (no self
      loops, deduplicated);
    - {!layered_dag} — nodes arranged in layers, edges only forward one
      layer; guarantees acyclicity with many alternative derivations —
      the regime where rederivation (and counting's alternative-derivation
      tracking) matters;
    - {!chain} — a path graph: worst case depth for recursion;
    - {!cycle} — a single directed cycle: every TC tuple depends on every
      edge, recursive counting diverges here;
    - {!grid} — 2-D lattice with right/down edges. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple

type edge = int * int

let node n = Value.Int n
let edge_tuple (a, b) = Tuple.make [| node a; node b |]

let tuples edges = List.map edge_tuple edges

(** [costed_tuples rng ~max_cost edges] — 3-column tuples with uniform
    integer costs in [1, max_cost]. *)
let costed_tuples rng ~max_cost edges =
  List.map
    (fun (a, b) ->
      Tuple.make [| node a; node b; Value.Int (1 + Prng.int rng max_cost) |])
    edges

let dedup edges = List.sort_uniq compare edges

(** [random rng ~nodes ~edges] — up to [edges] distinct random edges among
    [nodes] nodes (no self-loops). *)
let random rng ~nodes ~edges : edge list =
  if nodes < 2 then invalid_arg "Graph_gen.random: need at least 2 nodes";
  let rec draw k acc =
    if k = 0 then acc
    else
      let a = Prng.int rng nodes in
      let b = Prng.int rng nodes in
      if a = b then draw k acc else draw (k - 1) ((a, b) :: acc)
  in
  dedup (draw edges [])

(** [layered_dag rng ~layers ~width ~out_degree] — every node has
    [out_degree] edges into the next layer.  Node ids: layer ℓ, slot s ↦
    [ℓ * width + s]. *)
let layered_dag rng ~layers ~width ~out_degree : edge list =
  let acc = ref [] in
  for l = 0 to layers - 2 do
    for s = 0 to width - 1 do
      let src = (l * width) + s in
      for _ = 1 to out_degree do
        let dst = ((l + 1) * width) + Prng.int rng width in
        acc := (src, dst) :: !acc
      done
    done
  done;
  dedup !acc

let chain n : edge list = List.init (n - 1) (fun i -> (i, i + 1))

let cycle n : edge list = List.init n (fun i -> (i, (i + 1) mod n))

(** [scale_free rng ~nodes ~attach] — preferential attachment (Barabási–
    Albert style): nodes arrive one at a time and draw [attach] edges to
    earlier nodes with probability proportional to current degree, giving
    the heavy-tailed fan-outs real link graphs show (a few hubs dominate
    view sizes). *)
let scale_free rng ~nodes ~attach : edge list =
  if nodes < 2 then invalid_arg "Graph_gen.scale_free: need at least 2 nodes";
  (* endpoints multiset: each edge contributes both ends, so sampling a
     uniform element is degree-proportional sampling *)
  let endpoints = ref [ 0; 1 ] in
  let acc = ref [ (1, 0) ] in
  for v = 2 to nodes - 1 do
    let eps = Array.of_list !endpoints in
    for _ = 1 to attach do
      let target = eps.(Prng.int rng (Array.length eps)) in
      if target <> v then begin
        acc := (v, target) :: !acc;
        endpoints := v :: target :: !endpoints
      end
    done
  done;
  dedup !acc

(** [grid ~rows ~cols] — node (r,c) ↦ r*cols + c, edges right and down. *)
let grid ~rows ~cols : edge list =
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let id = (r * cols) + c in
      if c + 1 < cols then acc := (id, id + 1) :: !acc;
      if r + 1 < rows then acc := (id, id + cols) :: !acc
    done
  done;
  !acc
