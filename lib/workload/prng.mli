(** Deterministic splittable PRNG (SplitMix64): every workload, test and
    bench is reproducible from its seed, independent of [Stdlib.Random]
    state. *)

type t

val create : int -> t

(** Uniform in [0 .. bound - 1].  @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float, 0 inclusive to 1 exclusive. *)
val float : t -> float

val bool : t -> bool

(** Independent stream derived from this one. *)
val split : t -> t

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [sample t k xs] — [k] distinct elements (all when [k ≥ length]). *)
val sample : t -> int -> 'a list -> 'a list

(** Uniform element of a non-empty list. *)
val pick : t -> 'a list -> 'a
