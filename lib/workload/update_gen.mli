(** Update-stream generators: always-valid change sets against a live
    database's base relations (deletions pick stored tuples; insertions
    avoid duplicates). *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Database = Ivm_eval.Database
module Changes = Ivm.Changes

(** Delete [k] random stored tuples (fewer if the relation is smaller). *)
val deletions : Prng.t -> Database.t -> string -> int -> Changes.t

(** Insert [k] fresh random 2-column edges over nodes [0 .. nodes - 1]. *)
val edge_insertions :
  Prng.t -> Database.t -> string -> nodes:int -> int -> Changes.t

(** [dels] deletions ⊎ [ins] fresh insertions on one predicate. *)
val mixed :
  Prng.t -> Database.t -> string -> nodes:int -> dels:int -> ins:int -> Changes.t

(** Random ground tuple over integer columns. *)
val random_tuple : Prng.t -> arity:int -> domain:int -> Tuple.t
