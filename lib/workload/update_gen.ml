(** Update-stream generators: draw insertions, deletions and updates
    against a live database's base relations, always valid (deletions pick
    stored tuples, insertions avoid duplicates under set semantics). *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Database = Ivm_eval.Database
module Program = Ivm_datalog.Program
module Changes = Ivm.Changes

(** [deletions rng db pred k] — a change set deleting [k] random stored
    tuples of [pred] (fewer if the relation is smaller). *)
let deletions rng (db : Database.t) pred k : Changes.t =
  let stored = Database.relation db pred in
  let all = Relation.fold (fun tup _ acc -> tup :: acc) stored [] in
  let victims = Prng.sample rng k all in
  Changes.deletions (Database.program db) pred victims

(** [edge_insertions rng db pred ~nodes k] — [k] random new 2-column edges
    over integer nodes [0 .. nodes - 1], avoiding stored duplicates. *)
let edge_insertions rng (db : Database.t) pred ~nodes k : Changes.t =
  let stored = Database.relation db pred in
  let rec draw k acc =
    if k = 0 then acc
    else
      let t = [| Value.Int (Prng.int rng nodes); Value.Int (Prng.int rng nodes) |] in
      if Value.equal t.(0) t.(1) || Relation.mem stored t then draw k acc
      else draw (k - 1) (t :: acc)
  in
  Changes.insertions (Database.program db) pred (draw k [])

(** A mixed batch: [dels] deletions of stored tuples and [ins] fresh edge
    insertions on the same predicate. *)
let mixed rng db pred ~nodes ~dels ~ins : Changes.t =
  Changes.merge (deletions rng db pred dels) (edge_insertions rng db pred ~nodes ins)

(** Random ground fact over integer columns — for property tests on
    arbitrary arities. *)
let random_tuple rng ~arity ~domain =
  Array.init arity (fun _ -> Value.Int (Prng.int rng domain))
