(** Update-stream generators: draw insertions, deletions and updates
    against a live database's base relations, always valid (deletions pick
    stored tuples, insertions avoid duplicates under set semantics). *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Database = Ivm_eval.Database
module Program = Ivm_datalog.Program
module Changes = Ivm.Changes

(** [deletions rng db pred k] — a change set deleting [k] random stored
    tuples of [pred] (fewer if the relation is smaller). *)
let deletions rng (db : Database.t) pred k : Changes.t =
  let stored = Database.relation db pred in
  (* Sorted candidates: victim selection must depend only on the PRNG and
     the relation's contents, never on hash-table iteration order — the
     perf-regression harness compares final states across kernel versions. *)
  let all =
    List.sort Tuple.compare
      (Relation.fold (fun tup _ acc -> tup :: acc) stored [])
  in
  let victims = Prng.sample rng k all in
  Changes.deletions (Database.program db) pred victims

(** [edge_insertions rng db pred ~nodes k] — [k] random new 2-column edges
    over integer nodes [0 .. nodes - 1], avoiding stored duplicates. *)
let edge_insertions rng (db : Database.t) pred ~nodes k : Changes.t =
  let stored = Database.relation db pred in
  let rec draw k acc =
    if k = 0 then acc
    else
      let a = Prng.int rng nodes and b = Prng.int rng nodes in
      let t = Tuple.make [| Value.Int a; Value.Int b |] in
      if a = b || Relation.mem stored t then draw k acc
      else draw (k - 1) (t :: acc)
  in
  Changes.insertions (Database.program db) pred (draw k [])

(** A mixed batch: [dels] deletions of stored tuples and [ins] fresh edge
    insertions on the same predicate. *)
let mixed rng db pred ~nodes ~dels ~ins : Changes.t =
  Changes.merge (deletions rng db pred dels) (edge_insertions rng db pred ~nodes ins)

(** Random ground fact over integer columns — for property tests on
    arbitrary arities. *)
let random_tuple rng ~arity ~domain =
  Tuple.make (Array.init arity (fun _ -> Value.Int (Prng.int rng domain)))
