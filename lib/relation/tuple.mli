(** Database tuples: an immutable {!Value.t} vector boxed with its hash,
    computed once at construction.  Every storage-layer table is keyed by
    tuples; caching the hash means [Hashtbl] lookups never re-walk the
    value array, and unequal hashes reject equality in constant time.

    Treat tuples (and the arrays behind them) as immutable — the storage
    layer indexes them by the cached hash, and mutating a stored tuple's
    array corrupts both the hash and the index. *)

type t = private { vals : Value.t array; hash : int }

(** [make vals] boxes [vals], computing the hash.  Takes ownership: the
    caller must not mutate [vals] afterwards. *)
val make : Value.t array -> t

val arity : t -> int

(** [get t i] is column [i] ([t.vals.(i)]). *)
val get : t -> int -> Value.t

val compare : t -> t -> int

(** Physical equality, then cached-hash inequality (constant-time reject),
    then the column-wise walk. *)
val equal : t -> t -> bool

(** The hash cached at construction. *)
val hash : t -> int

val of_list : Value.t list -> t
val to_list : t -> Value.t list

(** [of_array] is {!make}; [to_array] exposes the underlying array —
    do not mutate it. *)
val of_array : Value.t array -> t

val to_array : t -> Value.t array

(** [of_ints [1;2]] builds an all-integer tuple; [of_strs ["a";"b"]] an
    all-symbol tuple (interned) — the common cases in tests mirroring the
    paper's examples ([link = {ab, mn}]). *)

val of_ints : int list -> t
val of_strs : string list -> t

(** [map f t] is a fresh tuple of [f] over the columns. *)
val map : (Value.t -> Value.t) -> t -> t

(** [project cols t] extracts the listed column positions, in order. *)
val project : int array -> t -> t

(** [append t v] is [t] with [v] as one extra trailing column (grouped
    relations: group key ++ aggregate value). *)
val append : t -> Value.t -> t

(** Prints as [(a, b, 3)]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
