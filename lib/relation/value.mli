(** Constants stored in database tuples.

    The paper's examples use symbolic constants ([link(a,b)]) and numeric
    costs ([link(s,d,c)]); we support integers, floats, strings (which also
    represent Datalog symbols) and booleans.  Comparisons between values of
    the same kind are the natural ones; values of different kinds are ordered
    by kind so that every pair of values has a deterministic order (needed
    for MIN/MAX aggregates over mixed columns and for canonical printing). *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val compare : t -> t -> int

(** Physical equality first (interned strings share boxes — see {!str}),
    then the structural order of {!compare}. *)
val equal : t -> t -> bool

val hash : t -> int

(** [pp] prints values the way the paper writes them: symbols bare,
    strings bare (quoted only when parsing would be ambiguous), numbers
    in decimal. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Constructors, for concision in tests and examples. *)

val int : int -> t
val float : float -> t

(** [str s] hash-conses: equal strings return the {e same} [Str] box, so
    {!equal} on two interned strings is one pointer compare.  The pool is
    weak (it never keeps a string alive) and mutex-guarded; every ingress
    point — the parsers, the store codec — interns through here. *)
val str : string -> t

val bool : bool -> t

(** Canonicalize one value: [Str] goes through the intern pool, other
    kinds pass through unchanged. *)
val intern : t -> t

(** Live entries in the intern pool (tests and observability). *)
val interned_count : unit -> int

(** Arithmetic used by head expressions and comparison literals
    (e.g. [hop(S,D,C1+C2)] in Example 6.2).  Integer arithmetic stays
    integral; any float operand promotes the result to float.
    @raise Type_error on non-numeric operands or division by zero. *)

exception Type_error of string

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

(** [as_number v] returns [v] as a float for aggregate arithmetic.
    @raise Type_error if [v] is not numeric. *)
val as_number : t -> float

val is_numeric : t -> bool
