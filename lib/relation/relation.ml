module Tbl = Hashtbl.Make (Tuple)

(* One stored tuple with its live derivation count.  The entry is shared
   between the main table and every secondary-index bucket, so a probe
   reads the count straight off the bucket — no second [counts] lookup —
   and an in-place count change ([add] on an existing tuple) touches no
   index at all. *)
type entry = { etup : Tuple.t; mutable ecount : int }

(* An index maps the projection of a tuple on [cols] to the bucket of
   entries having that projection. *)
type index = { cols : int array; buckets : entry Tbl.t Tbl.t }

(* [indexes] is demand-built on first probe, which can happen from several
   domains at once during parallel delta evaluation (relations are
   read-only there, but probing builds indexes).  The list is published
   through an [Atomic.t] — an index is fully built before it becomes
   reachable, so concurrent probers either see it complete or build-race
   on [build_lock] and find it on the re-check.  Mutation (insert/remove)
   remains single-domain, like the rest of the store. *)
type t = {
  arity : int;
  entries : entry Tbl.t;
  indexes : index list Atomic.t;
  build_lock : Mutex.t;
}

let create ?(size = 64) arity =
  { arity; entries = Tbl.create size; indexes = Atomic.make [];
    build_lock = Mutex.create () }
let arity r = r.arity
let cardinal r = Tbl.length r.entries

(** Number of demand-built secondary indexes currently attached (for the
    observability gauges — see {!Ivm_eval.Database.observe_gauges}). *)
let index_count r = List.length (Atomic.get r.indexes)
let total_count r = Tbl.fold (fun _ e acc -> acc + e.ecount) r.entries 0
let is_empty r = Tbl.length r.entries = 0
let count r t = match Tbl.find_opt r.entries t with Some e -> e.ecount | None -> 0
let mem r t = Tbl.mem r.entries t

let cols_equal (a : int array) (b : int array) =
  a == b
  || (Array.length a = Array.length b
      &&
      let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
      go 0)

let index_insert idx e =
  let key = Tuple.project idx.cols e.etup in
  let bucket =
    match Tbl.find_opt idx.buckets key with
    | Some b -> b
    | None ->
      let b = Tbl.create 4 in
      Tbl.add idx.buckets key b;
      b
  in
  Tbl.replace bucket e.etup e

let index_remove idx t =
  let key = Tuple.project idx.cols t in
  match Tbl.find_opt idx.buckets key with
  | None -> ()
  | Some b ->
    Tbl.remove b t;
    if Tbl.length b = 0 then Tbl.remove idx.buckets key

let check_arity r t =
  if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation: arity mismatch (expected %d, got %d in %s)"
         r.arity (Tuple.arity t) (Tuple.to_string t))

let insert_entry r e =
  Tbl.replace r.entries e.etup e;
  List.iter (fun idx -> index_insert idx e) (Atomic.get r.indexes)

let remove_entry r t =
  Tbl.remove r.entries t;
  List.iter (fun idx -> index_remove idx t) (Atomic.get r.indexes)

let set_count r t c =
  check_arity r t;
  match Tbl.find_opt r.entries t with
  | Some e -> if c = 0 then remove_entry r t else e.ecount <- c
  | None -> if c <> 0 then insert_entry r { etup = t; ecount = c }

(* The ⊎ hot path: one lookup, and an in-place count bump when the tuple
   stays resident (no index maintenance, no re-hash). *)
let add r t c =
  if c <> 0 then begin
    check_arity r t;
    match Tbl.find_opt r.entries t with
    | Some e ->
      let c' = e.ecount + c in
      if c' = 0 then remove_entry r t else e.ecount <- c'
    | None -> insert_entry r { etup = t; ecount = c }
  end

let remove r t = set_count r t 0

(* In-place signed-delta application for the snapshot publisher (PR 10).
   Same shape as [add] — in particular an in-place count bump touches no
   index, and insert/remove maintain every attached index incrementally —
   but a publish patch must never drive a count negative: the deltas it
   applies are the *net* changes the maintenance algorithms already
   committed to the live database, so a negative here means the publisher
   and the live store have diverged and the snapshot can no longer be
   trusted. *)
let patch r t c =
  if c <> 0 then begin
    check_arity r t;
    match Tbl.find_opt r.entries t with
    | Some e ->
      let c' = e.ecount + c in
      if c' < 0 then
        invalid_arg
          (Printf.sprintf "Relation.patch: count would go negative (%d%+d) for %s"
             e.ecount c (Tuple.to_string t));
      if c' = 0 then remove_entry r t else e.ecount <- c'
    | None ->
      if c < 0 then
        invalid_arg
          (Printf.sprintf "Relation.patch: count would go negative (0%+d) for %s"
             c (Tuple.to_string t));
      insert_entry r { etup = t; ecount = c }
  end

let iter f r = Tbl.iter (fun _ e -> f e.etup e.ecount) r.entries
let fold f r init = Tbl.fold (fun _ e acc -> f e.etup e.ecount acc) r.entries init

exception Found

let exists f r =
  try
    iter (fun t c -> if f t c then raise Found) r;
    false
  with Found -> true

let clear r =
  Tbl.reset r.entries;
  Atomic.set r.indexes []

(* Notified once per index actually built.  This layer cannot depend on
   the evaluator's counters, so the observer is injected from above
   ([Ivm_eval.Stats] installs itself at init). *)
let on_index_build : (unit -> unit) ref = ref (fun () -> ())

let build_index r cols =
  let idx = { cols; buckets = Tbl.create (max 16 (cardinal r)) } in
  Tbl.iter (fun _ e -> index_insert idx e) r.entries;
  idx

let find_index r cols =
  List.find_opt (fun idx -> cols_equal idx.cols cols) (Atomic.get r.indexes)

let get_index r cols =
  match find_index r cols with
  | Some idx -> idx
  | None ->
    (* Build-race with a concurrent prober: serialize builds on
       [build_lock], re-check under the lock, and publish the fully built
       index with a single [Atomic.set] so lock-free readers never see a
       partial index. *)
    Mutex.lock r.build_lock;
    let idx =
      match find_index r cols with
      | Some idx -> idx
      | None ->
        let idx = build_index r cols in
        Atomic.set r.indexes (idx :: Atomic.get r.indexes);
        !on_index_build ();
        idx
    in
    Mutex.unlock r.build_lock;
    idx

let ensure_index r cols = ignore (get_index r cols : index)

let copy ?(with_indexes = true) r =
  (* Fresh entry records (counts are mutable), then — by default — each
     index rebuilt over them, so a copy behaves like the live relation
     without lazily rebuilding on first probe.  [~with_indexes:false]
     skips the rebuild entirely: the serve publish path copies relations
     whose indexes the readers may never probe, and a reader that does
     probe rebuilds on demand under [build_lock] like any cold
     relation. *)
  let out = create ~size:(cardinal r) r.arity in
  Tbl.iter
    (fun t e -> Tbl.replace out.entries t { etup = e.etup; ecount = e.ecount })
    r.entries;
  if with_indexes then
    Atomic.set out.indexes
      (List.map (fun idx -> build_index out idx.cols) (Atomic.get r.indexes));
  out

let union_into ~into r = iter (fun t c -> add into t c) r

(* ⊎ and set-difference build {e index-free} results: the old
   implementation deep-copied every secondary index of [a] only to drop
   it, an O(|a| · indexes) waste per call.  Consumers rebuild indexes on
   demand if they ever probe the result. *)
let union a b =
  let r = create ~size:(cardinal a + cardinal b) a.arity in
  iter (fun t c -> add r t c) a;
  union_into ~into:r b;
  r

let diff a b =
  let r = create ~size:(cardinal a + cardinal b) a.arity in
  iter (fun t c -> add r t c) a;
  iter (fun t c -> add r t (-c)) b;
  r

let negate r =
  let out = create ~size:(cardinal r) r.arity in
  iter (fun t c -> set_count out t (-c)) r;
  out

let to_set r =
  let out = create ~size:(cardinal r) r.arity in
  iter (fun t c -> if c > 0 then set_count out t 1) r;
  out

let positive_part r =
  let out = create ~size:(cardinal r) r.arity in
  iter (fun t c -> if c > 0 then set_count out t c) r;
  out

let negative_part r =
  let out = create r.arity in
  iter (fun t c -> if c < 0 then set_count out t (-c)) r;
  out

let set_delta ~old_ ~new_ =
  let out = create new_.arity in
  iter (fun t c -> if c > 0 && count old_ t <= 0 then set_count out t 1) new_;
  iter (fun t c -> if c > 0 && count new_ t <= 0 then set_count out t (-1)) old_;
  out

let subset_by p a b =
  (* every tuple of [a] satisfying the relationship [p] w.r.t. [b] *)
  not (exists (fun t c -> not (p c (count b t))) a)

let equal_sets a b =
  subset_by (fun ca cb -> ca <= 0 || cb > 0) a b
  && subset_by (fun cb ca -> cb <= 0 || ca > 0) b a

let equal_counted a b =
  cardinal a = cardinal b && not (exists (fun t c -> count b t <> c) a)

(* ------------------------------------------------------------------ *)
(* Probing                                                              *)
(* ------------------------------------------------------------------ *)

(* Full-tuple fast path: probing on every column in natural order is a
   direct main-table lookup, no index.  Detected once, at handle
   resolution — not per probe call. *)
let natural_full r (cols : int array) =
  Array.length cols = r.arity
  &&
  let rec go i = i >= r.arity || (cols.(i) = i && go (i + 1)) in
  go 0

type handle = { hrel : t; hkind : kind }

and kind =
  | Kscan  (** no bound columns: enumerate everything *)
  | Kdirect  (** all columns bound in natural order: main-table lookup *)
  | Kindex of index  (** resolved secondary index *)

let probe_handle r cols =
  if Array.length cols = 0 then { hrel = r; hkind = Kscan }
  else if natural_full r cols then { hrel = r; hkind = Kdirect }
  else { hrel = r; hkind = Kindex (get_index r cols) }

let probe_via h key f =
  match h.hkind with
  | Kscan -> iter f h.hrel
  | Kdirect -> (
    match Tbl.find_opt h.hrel.entries key with
    | Some e -> f e.etup e.ecount
    | None -> ())
  | Kindex idx -> (
    match Tbl.find_opt idx.buckets key with
    | None -> ()
    | Some bucket -> Tbl.iter (fun _ e -> f e.etup e.ecount) bucket)

let probe r cols key f = probe_via (probe_handle r cols) key f

let of_list arity l =
  let r = create ~size:(List.length l) arity in
  List.iter (fun (t, c) -> add r t c) l;
  r

let of_tuples arity l =
  let r = create ~size:(List.length l) arity in
  List.iter (fun t -> add r t 1) l;
  r

let to_sorted_list r =
  fold (fun t c acc -> (t, c) :: acc) r []
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let pp ppf r =
  let pp_entry ppf (t, c) =
    let pp_body ppf t =
      Format.pp_print_seq
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
        Value.pp ppf
        (Array.to_seq (Tuple.to_array t))
    in
    if c = 1 then Format.fprintf ppf "%a" pp_body t
    else Format.fprintf ppf "%a %d" pp_body t c
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_entry)
    (to_sorted_list r)

let to_string r = Format.asprintf "%a" pp r
