module Tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* An index maps the projection of a tuple on [cols] to the set of stored
   tuples having that projection.  Counts live only in the main table. *)
type index = { cols : int list; buckets : unit Tbl.t Tbl.t }

(* [indexes] is demand-built on first probe, which can now happen from
   several domains at once during parallel delta evaluation (relations are
   read-only there, but probing builds indexes).  The list is published
   through an [Atomic.t] — an index is fully built before it becomes
   reachable, so concurrent probers either see it complete or build-race
   on [build_lock] and find it on the re-check.  Mutation (insert/remove)
   remains single-domain, like the rest of the store. *)
type t = {
  arity : int;
  counts : int Tbl.t;
  indexes : index list Atomic.t;
  build_lock : Mutex.t;
}

let create ?(size = 64) arity =
  { arity; counts = Tbl.create size; indexes = Atomic.make [];
    build_lock = Mutex.create () }
let arity r = r.arity
let cardinal r = Tbl.length r.counts

(** Number of demand-built secondary indexes currently attached (for the
    observability gauges — see {!Ivm_eval.Database.observe_gauges}). *)
let index_count r = List.length (Atomic.get r.indexes)
let total_count r = Tbl.fold (fun _ c acc -> acc + c) r.counts 0
let is_empty r = Tbl.length r.counts = 0
let count r t = match Tbl.find_opt r.counts t with Some c -> c | None -> 0
let mem r t = Tbl.mem r.counts t

let index_insert idx t =
  let key = Tuple.project idx.cols t in
  let bucket =
    match Tbl.find_opt idx.buckets key with
    | Some b -> b
    | None ->
      let b = Tbl.create 4 in
      Tbl.add idx.buckets key b;
      b
  in
  Tbl.replace bucket t ()

let index_remove idx t =
  let key = Tuple.project idx.cols t in
  match Tbl.find_opt idx.buckets key with
  | None -> ()
  | Some b ->
    Tbl.remove b t;
    if Tbl.length b = 0 then Tbl.remove idx.buckets key

let insert_tuple r t =
  List.iter (fun idx -> index_insert idx t) (Atomic.get r.indexes)

let remove_tuple r t =
  List.iter (fun idx -> index_remove idx t) (Atomic.get r.indexes)

let check_arity r t =
  if Array.length t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation: arity mismatch (expected %d, got %d in %s)"
         r.arity (Array.length t) (Tuple.to_string t))

let set_count r t c =
  check_arity r t;
  let was = Tbl.mem r.counts t in
  if c = 0 then begin
    if was then begin
      Tbl.remove r.counts t;
      remove_tuple r t
    end
  end
  else begin
    Tbl.replace r.counts t c;
    if not was then insert_tuple r t
  end

let add r t c = if c <> 0 then set_count r t (count r t + c)

let remove r t = set_count r t 0

let iter f r = Tbl.iter f r.counts
let fold f r init = Tbl.fold f r.counts init

exception Found

let exists f r =
  try
    Tbl.iter (fun t c -> if f t c then raise Found) r.counts;
    false
  with Found -> true

let clear r =
  Tbl.reset r.counts;
  Atomic.set r.indexes []

let copy r =
  let copy_index idx =
    let buckets = Tbl.create (Tbl.length idx.buckets) in
    Tbl.iter (fun key bucket -> Tbl.add buckets key (Tbl.copy bucket)) idx.buckets;
    { cols = idx.cols; buckets }
  in
  {
    arity = r.arity;
    counts = Tbl.copy r.counts;
    indexes = Atomic.make (List.map copy_index (Atomic.get r.indexes));
    build_lock = Mutex.create ();
  }

let union_into ~into r = iter (fun t c -> add into t c) r

let union a b =
  let r = copy a in
  Atomic.set r.indexes [];
  union_into ~into:r b;
  r

let diff a b =
  let r = copy a in
  Atomic.set r.indexes [];
  iter (fun t c -> add r t (-c)) b;
  r

let negate r =
  let out = create ~size:(cardinal r) r.arity in
  iter (fun t c -> set_count out t (-c)) r;
  out

let to_set r =
  let out = create ~size:(cardinal r) r.arity in
  iter (fun t c -> if c > 0 then set_count out t 1) r;
  out

let positive_part r =
  let out = create ~size:(cardinal r) r.arity in
  iter (fun t c -> if c > 0 then set_count out t c) r;
  out

let negative_part r =
  let out = create r.arity in
  iter (fun t c -> if c < 0 then set_count out t (-c)) r;
  out

let set_delta ~old_ ~new_ =
  let out = create new_.arity in
  iter (fun t c -> if c > 0 && count old_ t <= 0 then set_count out t 1) new_;
  iter (fun t c -> if c > 0 && count new_ t <= 0 then set_count out t (-1)) old_;
  out

let subset_by p a b =
  (* every tuple of [a] satisfying the relationship [p] w.r.t. [b] *)
  not (exists (fun t c -> not (p c (count b t))) a)

let equal_sets a b =
  subset_by (fun ca cb -> ca <= 0 || cb > 0) a b
  && subset_by (fun cb ca -> cb <= 0 || ca > 0) b a

let equal_counted a b =
  cardinal a = cardinal b && not (exists (fun t c -> count b t <> c) a)

(* Notified once per index actually built.  This layer cannot depend on
   the evaluator's counters, so the observer is injected from above
   ([Ivm_eval.Stats] installs itself at init). *)
let on_index_build : (unit -> unit) ref = ref (fun () -> ())

let ensure_index r cols =
  if not (List.exists (fun idx -> idx.cols = cols) (Atomic.get r.indexes))
  then begin
    (* Build-race with a concurrent prober: serialize builds on
       [build_lock], re-check under the lock, and publish the fully built
       index with a single [Atomic.set] so lock-free readers never see a
       partial index. *)
    Mutex.lock r.build_lock;
    let cur = Atomic.get r.indexes in
    (if not (List.exists (fun idx -> idx.cols = cols) cur) then begin
       let idx = { cols; buckets = Tbl.create (max 16 (cardinal r / 4)) } in
       Tbl.iter (fun t _ -> index_insert idx t) r.counts;
       Atomic.set r.indexes (idx :: cur);
       !on_index_build ()
     end);
    Mutex.unlock r.build_lock
  end

let rec natural_prefix n = function
  | [] -> n = 0
  | c :: rest -> c = n && natural_prefix (n + 1) rest

let probe r cols key f =
  if cols = [] then iter f r
  else if List.length cols = r.arity && natural_prefix 0 cols then begin
    (* full-tuple membership probe: direct lookup, no index needed *)
    match Tbl.find_opt r.counts key with
    | Some c -> f key c
    | None -> ()
  end
  else begin
    ensure_index r cols;
    let idx = List.find (fun idx -> idx.cols = cols) (Atomic.get r.indexes) in
    match Tbl.find_opt idx.buckets key with
    | None -> ()
    | Some bucket ->
      Tbl.iter
        (fun t () ->
          match Tbl.find_opt r.counts t with
          | Some c -> f t c
          | None -> ())
        bucket
  end

let of_list arity l =
  let r = create ~size:(List.length l) arity in
  List.iter (fun (t, c) -> add r t c) l;
  r

let of_tuples arity l =
  let r = create ~size:(List.length l) arity in
  List.iter (fun t -> add r t 1) l;
  r

let to_sorted_list r =
  fold (fun t c acc -> (t, c) :: acc) r []
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let pp ppf r =
  let pp_entry ppf (t, c) =
    let pp_body ppf t =
      Format.pp_print_seq
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
        Value.pp ppf (Array.to_seq t)
    in
    if c = 1 then Format.fprintf ppf "%a" pp_body t
    else Format.fprintf ppf "%a %d" pp_body t c
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_entry)
    (to_sorted_list r)

let to_string r = Format.asprintf "%a" pp r
