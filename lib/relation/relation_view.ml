type t =
  | Concrete of Relation.t
  | Overlay of { base : Relation.t; delta : Relation.t }

let concrete r = Concrete r

let overlay base delta =
  if Relation.is_empty delta then Concrete base else Overlay { base; delta }

let arity = function
  | Concrete r -> Relation.arity r
  | Overlay { base; _ } -> Relation.arity base

let count v t =
  match v with
  | Concrete r -> Relation.count r t
  | Overlay { base; delta } -> Relation.count base t + Relation.count delta t

let mem v t = count v t <> 0
let holds v t = count v t > 0

let iter f = function
  | Concrete r -> Relation.iter f r
  | Overlay { base; delta } ->
    Relation.iter
      (fun t c ->
        let c = c + Relation.count delta t in
        if c <> 0 then f t c)
      base;
    Relation.iter (fun t c -> if not (Relation.mem base t) && c <> 0 then f t c) delta

let fold f v init =
  let acc = ref init in
  iter (fun t c -> acc := f t c !acc) v;
  !acc

type prepared =
  | Pconcrete of Relation.handle
  | Poverlay of {
      base : Relation.t;
      delta : Relation.t;
      hbase : Relation.handle;
      hdelta : Relation.handle;
    }

let prepare_probe v cols =
  match v with
  | Concrete r -> Pconcrete (Relation.probe_handle r cols)
  | Overlay { base; delta } ->
    Poverlay
      { base; delta;
        hbase = Relation.probe_handle base cols;
        hdelta = Relation.probe_handle delta cols }

let run_probe p key f =
  match p with
  | Pconcrete h -> Relation.probe_via h key f
  | Poverlay { base; delta; hbase; hdelta } ->
    Relation.probe_via hbase key (fun t c ->
        let c = c + Relation.count delta t in
        if c <> 0 then f t c);
    Relation.probe_via hdelta key (fun t c ->
        if not (Relation.mem base t) && c <> 0 then f t c)

let probe v cols key f = run_probe (prepare_probe v cols) key f

let cardinal_estimate = function
  | Concrete r -> Relation.cardinal r
  | Overlay { base; delta } -> Relation.cardinal base + Relation.cardinal delta

let force v =
  match v with
  | Concrete r -> Relation.copy r
  | Overlay { base; delta } ->
    let out = Relation.copy base in
    Relation.union_into ~into:out delta;
    out
