type t = { vals : Value.t array; hash : int }

(* Same column-wise combination as before the hash was cached; Value.hash
   maps Int 2 and Float 2.0 to the same bucket, so [equal] (which treats
   them as equal, like Value.compare) still implies equal hashes. *)
let hash_vals vals =
  let h = ref (Array.length vals) in
  for i = 0 to Array.length vals - 1 do
    h := (!h * 31) + Value.hash vals.(i)
  done;
  !h land max_int

let make vals = { vals; hash = hash_vals vals }

let arity t = Array.length t.vals
let get t i = t.vals.(i)
let hash t = t.hash

let compare a b =
  if a == b then 0
  else
    let va = a.vals and vb = b.vals in
    let la = Array.length va and lb = Array.length vb in
    if la <> lb then Int.compare la lb
    else
      let rec go i =
        if i >= la then 0
        else
          let c = Value.compare va.(i) vb.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

(* The cached hashes give a constant-time negative before any column is
   compared — the common case in hash-table bucket collisions. *)
let equal a b = a == b || (a.hash = b.hash && compare a b = 0)

let of_list vs = make (Array.of_list vs)
let of_array = make
let to_array t = t.vals
let to_list t = Array.to_list t.vals
let of_ints xs = make (Array.of_list (List.map Value.int xs))
let of_strs xs = make (Array.of_list (List.map Value.str xs))

let map f t = make (Array.map f t.vals)

let project cols t = make (Array.map (fun i -> t.vals.(i)) cols)

let append t v =
  let n = Array.length t.vals in
  let vals = Array.make (n + 1) v in
  Array.blit t.vals 0 vals 0 n;
  make vals

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    t.vals

let to_string t = Format.asprintf "%a" pp t
