(** Read-only views of relations, including the "new" version [Pν = P ⊎ Δ(P)]
    as a lazy overlay, so Algorithm 4.1's delta rules can reference both the
    old and the new value of every relation without copying the stored
    materialization.  Effective counts of an overlay are
    [count base t + count delta t]; tuples whose counts cancel are invisible. *)

type t =
  | Concrete of Relation.t
  | Overlay of { base : Relation.t; delta : Relation.t }
      (** [base ⊎ delta], without materializing the union. *)

val concrete : Relation.t -> t

(** [overlay base delta] — collapses to [Concrete base] when [delta] is
    empty, so unchanged relations pay nothing. *)
val overlay : Relation.t -> Relation.t -> t

val arity : t -> int
val count : t -> Tuple.t -> int

(** Non-zero effective count. *)
val mem : t -> Tuple.t -> bool

(** Strictly positive effective count — "the tuple is true".  Deltas can
    carry negative counts, hence the distinction with {!mem}. *)
val holds : t -> Tuple.t -> bool

(** Iterates each visible tuple exactly once with its effective count. *)
val iter : (Tuple.t -> int -> unit) -> t -> unit

val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** A view probe with its access paths resolved once (see
    {!Relation.probe_handle}) — one handle for a [Concrete] view, a
    base/delta pair for an [Overlay].  Like relation handles, prepared
    probes are transient: resolve per evaluation. *)
type prepared

val prepare_probe : t -> int array -> prepared

(** [run_probe p key f] reports each visible tuple matching [key] exactly
    once with its effective count.  [f] receives stored tuples, never
    [key], so [key]'s buffer may be reused across calls. *)
val run_probe : prepared -> Tuple.t -> (Tuple.t -> int -> unit) -> unit

(** Index-assisted scan of tuples matching [key] on [cols] — the one-shot
    [run_probe (prepare_probe v cols)]; each visible tuple reported once. *)
val probe : t -> int array -> Tuple.t -> (Tuple.t -> int -> unit) -> unit

(** Distinct visible tuples (exact for [Concrete], an upper bound for
    [Overlay] — used only to pick join orders). *)
val cardinal_estimate : t -> int

(** Materialize the view into a fresh relation. *)
val force : t -> Relation.t
