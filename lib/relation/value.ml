type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let kind_rank = function
  | Int _ -> 0
  | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | _ -> Int.compare (kind_rank a) (kind_rank b)

(* The equality hot path: [match_pattern] compares a bound value against
   every scanned tuple's column.  Physical equality first — interned
   strings ({!str}) and values copied out of stored tuples share boxes, so
   the fallback structural walk runs only on genuinely distinct values or
   un-interned duplicates. *)
let equal a b = a == b || compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash x
  | Float x ->
    (* Hash an integral float like the equal integer so that [equal]
       implies equal hashes (Int 2 = Float 2.0 under [compare]). *)
    if Float.is_integer x && Float.abs x < 1e18 then Hashtbl.hash (int_of_float x)
    else Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b

let needs_quotes s =
  s = ""
  (* bare, these lex as the NOT keyword / boolean literals, not symbols *)
  || s = "not" || s = "true" || s = "false"
  || (match s.[0] with 'a' .. 'z' -> false | _ -> true)
  || String.exists
       (fun c ->
         not ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
             || (c >= '0' && c <= '9') || c = '_'))
       s

(* A string literal the Datalog lexer can read back: only the escapes it
   knows (backslash-escaped quote, backslash, n, t, r); every other byte
   passes through raw.  OCaml's %S would emit decimal escapes like \001
   that the lexer rejects. *)
let quoted s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Shortest representation that parses back to the same float.  Integral
   floats keep a ".0" so they re-read as Float, not Int; infinities use an
   overflowing literal since the lexer has no keyword for them.  NaN (not
   constructible by the evaluator's arithmetic) stays display-only. *)
let float_repr x =
  if Float.is_nan x then "nan"
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else if Float.is_integer x && Float.abs x < 1e16 then Printf.sprintf "%.1f" x
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p x in
      if float_of_string s = x then Some s else None
    in
    let s =
      match try_prec 15 with
      | Some s -> s
      | None ->
        (match try_prec 16 with Some s -> s | None -> Printf.sprintf "%.17g" x)
    in
    (* %g drops the point for integral values once the exponent fits the
       precision ("35757007246772772") — that would re-lex as an Int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.pp_print_string ppf (float_repr x)
  | Str s ->
    if needs_quotes s then Format.pp_print_string ppf (quoted s)
    else Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b

let to_string v = Format.asprintf "%a" pp v

(* ------------------------------------------------------------------ *)
(* Hash-consing of strings                                              *)
(* ------------------------------------------------------------------ *)

(* Canonical [Str] boxes, hash-consed through a weak set so the pool never
   keeps a string alive on its own.  Interning buys the [==] fast path in
   {!equal} (one pointer compare instead of a byte-wise walk on the join
   kernel's innermost loop) and makes snapshot/WAL reload share boxes with
   freshly parsed programs.  Ingress points (the Datalog/SQL parsers, the
   store codec, {!str}) intern; values already inside tuples stay interned
   as they flow through joins, so the hot path never touches the pool.

   The pool is guarded by a mutex: interning happens at parse/load time,
   not during parallel delta evaluation, so the lock is uncontended. *)
module Pool = Weak.Make (struct
  type nonrec t = t

  let equal a b =
    match a, b with
    | Str x, Str y -> String.equal x y
    | _ -> a == b  (* only Str values enter the pool *)

  let hash = function Str s -> Hashtbl.hash s | v -> Hashtbl.hash v
end)

let pool = Pool.create 1024
let pool_lock = Mutex.create ()

let str s =
  let v = Str s in
  Mutex.lock pool_lock;
  let c = try Pool.merge pool v with e -> Mutex.unlock pool_lock; raise e in
  Mutex.unlock pool_lock;
  c

(** Canonicalize one value: strings go through the intern pool, other
    kinds pass through.  The store codec interns every decoded string so a
    reloaded database joins as fast as a freshly built one. *)
let intern = function Str s -> str s | v -> v

(** Number of live interned strings (observability / tests). *)
let interned_count () =
  Mutex.lock pool_lock;
  let n = Pool.count pool in
  Mutex.unlock pool_lock;
  n

let int x = Int x
let float x = Float x
let bool b = Bool b

let is_numeric = function Int _ | Float _ -> true | Str _ | Bool _ -> false

let as_number = function
  | Int x -> float_of_int x
  | Float x -> x
  | (Str _ | Bool _) as v -> type_error "expected a number, got %s" (to_string v)

let arith name int_op float_op a b =
  match a, b with
  | Int x, Int y -> Int (int_op x y)
  | Float x, Float y -> Float (float_op x y)
  | Int x, Float y -> Float (float_op (float_of_int x) y)
  | Float x, Int y -> Float (float_op x (float_of_int y))
  | _ -> type_error "%s: non-numeric operand (%s, %s)" name (to_string a) (to_string b)

let add a b = arith "+" ( + ) ( +. ) a b
let sub a b = arith "-" ( - ) ( -. ) a b
let mul a b = arith "*" ( * ) ( *. ) a b

let div a b =
  match b with
  | Int 0 -> type_error "division by zero"
  | Float 0. -> type_error "division by zero"
  | _ -> arith "/" ( / ) ( /. ) a b

let neg = function
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | (Str _ | Bool _) as v -> type_error "-: non-numeric operand %s" (to_string v)
