(** Counted relations — the storage layer of the reproduction.

    A relation is a multiset of tuples represented as a hash map from tuple
    to a signed {e count}.  Following Section 3 of the paper:

    - a {e stored} (materialized) relation holds, for each tuple [t], the
      number of distinct derivations [count(t) > 0];
    - a {e delta} relation [Δ(P)] holds insertions as positive counts and
      deletions as negative counts ([Δ(P) = {ab 4, mn −2}] means four
      derivations of [p(a,b)] inserted, two of [p(m,n)] deleted);
    - the union operator [⊎] ({!union_into}/{!union}) adds counts and drops
      tuples whose counts cancel to zero;
    - joins multiply counts (implemented by the rule evaluator, which reads
      counts through {!probe}/{!iter}).

    Relations carry hash indexes on column subsets, built on demand and
    maintained incrementally by {!add}, so delta-rule evaluation can probe
    large stored relations by bound columns instead of scanning. *)

type t

(** [create ?size arity] makes an empty relation of the given arity. *)
val create : ?size:int -> int -> t

val arity : t -> int

(** Number of distinct tuples with a non-zero count. *)
val cardinal : t -> int

(** Number of demand-built secondary indexes currently attached (for the
    observability gauges). *)
val index_count : t -> int

(** Sum of all counts (signed); for a stored view this is the total number
    of derivations, i.e. the duplicate-semantics size. *)
val total_count : t -> int

val is_empty : t -> bool

(** [count r t] is 0 when [t] is absent. *)
val count : t -> Tuple.t -> int

(** [mem r t] — [t] has a non-zero count. *)
val mem : t -> Tuple.t -> bool

(** [add r t c] merges [c] into [t]'s count ([⊎] on a single tuple);
    the tuple is dropped when its count reaches zero.  [add r t 0] is a
    no-op.  Indexes are maintained.
    @raise Invalid_argument on an arity mismatch. *)
val add : t -> Tuple.t -> int -> unit

(** [set_count r t c] overwrites the count ([c = 0] deletes). *)
val set_count : t -> Tuple.t -> int -> unit

(** [patch r t c] applies a signed net delta in place, like {!add} —
    indexes are maintained incrementally (an in-place count bump touches
    no index at all) — but refuses to drive a count negative.  The
    snapshot publisher applies net changes already committed to the live
    database, so a negative result means publisher and live store have
    diverged.
    @raise Invalid_argument on arity mismatch or a would-be negative
    count. *)
val patch : t -> Tuple.t -> int -> unit

(** [remove r t] deletes the tuple outright, whatever its count. *)
val remove : t -> Tuple.t -> unit

val iter : (Tuple.t -> int -> unit) -> t -> unit
val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (Tuple.t -> int -> bool) -> t -> bool
val clear : t -> unit

(** Deep copy.  With [~with_indexes:true] (the default) every secondary
    index is rebuilt over the fresh entries, so the copy behaves like the
    live relation without lazily rebuilding on first probe.
    [~with_indexes:false] skips the rebuild — the serve publish path uses
    this because readers may never probe those indexes; a reader that
    does probe rebuilds on demand under the build lock. *)
val copy : ?with_indexes:bool -> t -> t

(** [union_into ~into r] folds [r] into [into] with [⊎]. *)
val union_into : into:t -> t -> unit

(** Fresh [⊎] of the arguments.  The result carries no indexes (they are
    rebuilt on demand if the result is ever probed) — copying the left
    argument's indexes only to discard them was pure waste. *)
val union : t -> t -> t

(** [diff a b] is [a ⊎ (−1 · b)]: subtracts counts.  Index-free like
    {!union}. *)
val diff : t -> t -> t

(** All counts negated — used to turn an insertion delta into a deletion. *)
val negate : t -> t

(** [to_set r] clamps positive counts to 1 and drops non-positive tuples:
    the relation "considered as a set" (statement 2 of Algorithm 4.1). *)
val to_set : t -> t

(** Tuples with count > 0 kept with their counts (drops deletions). *)
val positive_part : t -> t

(** Tuples with count < 0, with counts negated to positive (the deletions). *)
val negative_part : t -> t

(** [set_delta ~old_ ~new_] is [set(new) − set(old)] with ±1 counts —
    exactly the boxed statement (2) of Algorithm 4.1. *)
val set_delta : old_:t -> new_:t -> t

(** Equality of the underlying sets ({i count > 0} tuples). *)
val equal_sets : t -> t -> bool

(** Equality including counts. *)
val equal_counted : t -> t -> bool

(** [ensure_index r cols] builds (once) a hash index keyed by the listed
    column positions; subsequent {!add}s keep it current. *)
val ensure_index : t -> int array -> unit

(** Called once per index actually built (under the build lock).  This
    layer has no dependency on the evaluator, so work accounting is
    injected from above — [Ivm_eval.Stats] installs its counter here at
    init.  Replace, don't chain, unless you save the previous value. *)
val on_index_build : (unit -> unit) ref

(** A probe access path resolved once — at plan-build time rather than per
    probe call.  Resolution classifies the column set (no columns → scan;
    the full tuple in natural order → direct main-table lookup; otherwise
    a secondary index, built now if missing) so {!probe_via} does no
    per-call classification, no index list search, and no second count
    lookup.

    Handles are transient: {!clear} detaches the indexes a handle points
    at, so resolve per evaluation, not per program. *)
type handle

val probe_handle : t -> int array -> handle

(** [probe_via h key f] calls [f tuple count] for every tuple whose
    projection on the handle's columns equals [key].  The tuples passed to
    [f] are the stored ones, never [key] itself, so callers may reuse
    [key]'s buffer across calls. *)
val probe_via : handle -> Tuple.t -> (Tuple.t -> int -> unit) -> unit

(** [probe r cols key f] is [probe_via (probe_handle r cols) key f] —
    the one-shot form.  [cols = [||]] degenerates to {!iter}. *)
val probe : t -> int array -> Tuple.t -> (Tuple.t -> int -> unit) -> unit

val of_list : int -> (Tuple.t * int) list -> t

(** Tuples with count 1 each (duplicates in the list accumulate). *)
val of_tuples : int -> Tuple.t list -> t

(** Sorted [(tuple, count)] list — deterministic, for tests and printing. *)
val to_sorted_list : t -> (Tuple.t * int) list

(** Prints as [{ab, ac 2, mn -1}] in tuple order, counts omitted when 1. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
