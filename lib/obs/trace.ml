(** Span-based tracer with a near-zero-cost disabled path.

    Instrumented code wraps regions in {!span}; when tracing is off (the
    default) that is one boolean load and a direct call.  When on, each
    span records a Chrome [trace_event] {e complete} event (["ph": "X"])
    with microsecond timestamp and duration, delivered to two sinks:

    - an in-memory {b ring buffer} (always, bounded, oldest dropped);
    - an optional {b JSONL writer} whose output loads directly in
      [chrome://tracing] / Perfetto: the file is a JSON array — an opening
      bracket, then one event object per line (the spec makes the closing
      bracket optional, so the file is valid even mid-trace).

    Span [args] are passed as a thunk evaluated {e after} the spanned
    function returns — so instrumentation can report deltas of work
    counters measured across the span without paying for them when
    tracing is off.

    Nesting needs no explicit bookkeeping: complete events nest by
    timestamp containment, which is how the viewers render them.  A
    [depth] argument is still attached to every event so tests (and the
    ring buffer) can check ordering without timestamp arithmetic. *)

type kind = Span | Instant | Flow_start | Flow_step | Flow_end

type event = {
  kind : kind;  (** a span is a complete event even at zero duration *)
  name : string;
  cat : string;
  ts_us : float;  (** microseconds since {!enable}-time *)
  dur_us : float;  (** span duration; [0] for instants *)
  depth : int;  (** span-nesting depth at emission *)
  tid : int;  (** emitting domain id, the Chrome [tid] lane *)
  id : int;  (** flow-event correlation id; [0] for non-flow events *)
  args : (string * string) list;
}

type state = {
  mutable on : bool;
  mutable t0 : float;  (** [Unix.gettimeofday] at enable-time *)
  mutable ring : event array;
  mutable ring_len : int;  (** events stored (≤ capacity) *)
  mutable ring_next : int;  (** next write slot *)
  mutable chan : out_channel option;
  mutable path : string option;
  mutable depth : int;
  mutable dropped : int;  (** ring evictions since enable *)
}

let dummy_event =
  { kind = Instant; name = ""; cat = ""; ts_us = 0.; dur_us = 0.; depth = 0;
    tid = 0; id = 0; args = [] }

let self_tid () = (Domain.self () :> int)

let state =
  {
    on = false;
    t0 = 0.;
    ring = [||];
    ring_len = 0;
    ring_next = 0;
    chan = None;
    path = None;
    depth = 0;
    dropped = 0;
  }

let enabled () = state.on
let default_capacity = 4096

(* Trace loss is itself observable: /metrics exposes how many events the
   ring evicted and how big the ring is, so a truncated /trace drain is
   detectable instead of silent. *)
let dropped_gauge =
  Metrics.gauge "ivm_trace_dropped"
    ~help:"Trace events evicted from the ring buffer since enable"

let capacity_gauge =
  Metrics.gauge "ivm_trace_ring_capacity"
    ~help:"Capacity of the trace ring buffer (0 until first enabled)"

(* Spans can be emitted from worker domains during parallel fan-out
   ([Ivm_par]) and from every serve-path domain (readers, writer,
   accept); the ring cursor and file channel are shared, so event
   emission is serialized on [record_lock].  Control operations
   ([enable]/[disable]) take the same lock: they swap the ring array and
   the file channel, and an emitter caught between the [state.on] check
   and [record] must land in either the old or the new sink — never in
   a closed channel or a torn ring.  The [depth] counter stays a
   best-effort plain field: concurrent spans would interleave depths
   anyway, and viewers nest by timestamp containment, not depth. *)
let record_lock = Mutex.create ()

let now_us () = (Unix.gettimeofday () -. state.t0) *. 1e6

(* ---------------- sinks ---------------- *)

let record_ring ev =
  let cap = Array.length state.ring in
  if cap > 0 then begin
    if state.ring_len = cap then begin
      state.dropped <- state.dropped + 1;
      Metrics.set dropped_gauge (float_of_int state.dropped)
    end
    else state.ring_len <- state.ring_len + 1;
    state.ring.(state.ring_next) <- ev;
    state.ring_next <- (state.ring_next + 1) mod cap
  end

let event_json ev =
  let ph =
    match ev.kind with
    | Span -> "X"
    | Instant -> "i"
    | Flow_start -> "s"
    | Flow_step -> "t"
    | Flow_end -> "f"
  in
  (* flow events carry the correlation [id] (and bind to the enclosing
     slice, "bp": "e") so viewers draw arrows between the reader- and
     writer-domain spans of one request *)
  let flow_fields =
    match ev.kind with
    | Flow_start | Flow_step | Flow_end ->
      [ ("id", Json.int ev.id); ("bp", Json.Str "e") ]
    | Span | Instant -> []
  in
  Json.Obj
    ([
       ("name", Json.Str ev.name);
       ("cat", Json.Str ev.cat);
       ("ph", Json.Str ph);
       ("ts", Json.Num ev.ts_us);
       ("dur", Json.Num ev.dur_us);
       ("pid", Json.int 1);
       ("tid", Json.int ev.tid);
     ]
    @ flow_fields
    @ [
        ( "args",
          Json.Obj
            (("depth", Json.int ev.depth)
            :: List.map (fun (k, v) -> (k, Json.Str v)) ev.args) );
      ])

let record ev =
  Mutex.lock record_lock;
  (* re-check under the lock: [disable] may have closed the sinks between
     the caller's [state.on] test and here *)
  if state.on then begin
    record_ring ev;
    match state.chan with
    | None -> ()
    | Some oc ->
      output_string oc (Json.to_string (event_json ev));
      output_string oc ",\n"
  end;
  Mutex.unlock record_lock

(* ---------------- control ---------------- *)

(* ring/channel swaps happen under [record_lock] so concurrent emitters
   (multiple domains are live whenever the server or the parallel pool
   runs) never write into a freed ring slot or a closed channel *)
let enable_locked ?(capacity = default_capacity) ?chan ?path () =
  Mutex.lock record_lock;
  state.t0 <- Unix.gettimeofday ();
  state.ring <- Array.make capacity dummy_event;
  state.ring_len <- 0;
  state.ring_next <- 0;
  state.depth <- 0;
  state.dropped <- 0;
  state.chan <- chan;
  state.path <- path;
  state.on <- true;
  Mutex.unlock record_lock;
  Metrics.set dropped_gauge 0.;
  Metrics.set capacity_gauge (float_of_int capacity)

(** Start tracing into the ring buffer only. *)
let enable ?capacity () = enable_locked ?capacity ()

(** Start tracing into [path] (Chrome trace format) and the ring buffer.
    Truncates an existing file. *)
let enable_file ?capacity path =
  let oc = open_out path in
  output_string oc "[\n";
  enable_locked ?capacity ~chan:oc ~path ()

(** Stop tracing; flushes and closes the file sink if open.  Returns the
    path written, if any. *)
let disable () =
  Mutex.lock record_lock;
  let written = state.path in
  (match state.chan with
  | Some oc ->
    flush oc;
    close_out oc
  | None -> ());
  state.chan <- None;
  state.path <- None;
  state.on <- false;
  Mutex.unlock record_lock;
  written

let file_path () = state.path
let dropped () = state.dropped

(* Readers race worker-domain emission, so snapshots take [record_lock]. *)
let ring_snapshot () =
  let cap = Array.length state.ring in
  if cap = 0 || state.ring_len = 0 then []
  else begin
    let start = (state.ring_next - state.ring_len + cap) mod cap in
    List.init state.ring_len (fun i -> state.ring.((start + i) mod cap))
  end

(** Ring contents, oldest first. *)
let ring_events () : event list =
  Mutex.lock record_lock;
  let evs = ring_snapshot () in
  Mutex.unlock record_lock;
  evs

(** Ring contents oldest first, emptying the ring atomically — consumed
    by the monitor's [/trace] endpoint so repeated drains see disjoint
    event batches.  [dropped] accounting is untouched (it counts ring
    evictions, not drains). *)
let drain () : event list =
  Mutex.lock record_lock;
  let evs = ring_snapshot () in
  state.ring_len <- 0;
  state.ring_next <- 0;
  Mutex.unlock record_lock;
  evs

(** Events as a Chrome [trace_event] JSON array (the same object shape
    the file sink writes line by line). *)
let events_json (evs : event list) : Json.t =
  Json.List (List.map event_json evs)

(* ---------------- emission ---------------- *)

let no_args () = []

(** [span name f] runs [f], recording a complete event around it when
    tracing is enabled.  [args] is evaluated after [f] returns (once, only
    when tracing).  Exceptions propagate; the event is still recorded with
    an ["exn"] argument so a trace never loses the span that failed. *)
let span ?(cat = "ivm") ?(args = no_args) name f =
  if not state.on then f ()
  else begin
    let ts = now_us () in
    let depth = state.depth in
    state.depth <- depth + 1;
    match f () with
    | x ->
      state.depth <- depth;
      record
        { kind = Span; name; cat; ts_us = ts; dur_us = now_us () -. ts; depth;
          tid = self_tid (); id = 0; args = args () };
      x
    | exception e ->
      state.depth <- depth;
      record
        {
          kind = Span;
          name;
          cat;
          ts_us = ts;
          dur_us = now_us () -. ts;
          depth;
          tid = self_tid ();
          id = 0;
          args = [ ("exn", Printexc.to_string e) ];
        };
      raise e
  end

(** A zero-duration instant event. *)
let instant ?(cat = "ivm") ?(args = no_args) name =
  if state.on then
    record
      { kind = Instant; name; cat; ts_us = now_us (); dur_us = 0.;
        depth = state.depth; tid = self_tid (); id = 0; args = args () }

(** [span_at ~ts ~dur name] records a complete event with an explicit
    start ([Unix.gettimeofday] seconds) and duration (seconds) — for
    cross-domain work measured where it happened and emitted later, e.g.
    a request's stage chain replayed at completion ({!Ivm_obs.Reqtrace}
    does exactly that).  [tid] defaults to the emitting domain; pass the
    domain that {e did} the work so the span lands in its lane. *)
let span_at ?(cat = "ivm") ?(args = []) ?tid ~ts ~dur name =
  if state.on then
    record
      {
        kind = Span;
        name;
        cat;
        ts_us = (ts -. state.t0) *. 1e6;
        dur_us = dur *. 1e6;
        depth = 0;
        tid = (match tid with Some t -> t | None -> self_tid ());
        id = 0;
        args;
      }

(** [flow ~phase ~id ~ts name] emits one Chrome flow event ([ph] "s",
    "t" or "f") with correlation [id] at absolute time [ts], in lane
    [tid] — the arrows that link one request's spans across the reader
    and writer domains. *)
let flow ?(cat = "ivm") ?tid ~phase ~id ~ts name =
  if state.on then
    record
      {
        kind =
          (match phase with
          | `Start -> Flow_start
          | `Step -> Flow_step
          | `End -> Flow_end);
        name;
        cat;
        ts_us = (ts -. state.t0) *. 1e6;
        dur_us = 0.;
        depth = 0;
        tid = (match tid with Some t -> t | None -> self_tid ());
        id;
        args = [];
      }
