(** Span-based tracer with a near-zero-cost disabled path.

    Instrumented code wraps regions in {!span}; when tracing is off (the
    default) that is one boolean load and a direct call.  When on, each
    span records a Chrome [trace_event] {e complete} event (["ph": "X"])
    with microsecond timestamp and duration, delivered to two sinks:

    - an in-memory {b ring buffer} (always, bounded, oldest dropped);
    - an optional {b JSONL writer} whose output loads directly in
      [chrome://tracing] / Perfetto: the file is a JSON array — an opening
      bracket, then one event object per line (the spec makes the closing
      bracket optional, so the file is valid even mid-trace).

    Span [args] are passed as a thunk evaluated {e after} the spanned
    function returns — so instrumentation can report deltas of work
    counters measured across the span without paying for them when
    tracing is off.

    Nesting needs no explicit bookkeeping: complete events nest by
    timestamp containment, which is how the viewers render them.  A
    [depth] argument is still attached to every event so tests (and the
    ring buffer) can check ordering without timestamp arithmetic. *)

type kind = Span | Instant

type event = {
  kind : kind;  (** a span is a complete event even at zero duration *)
  name : string;
  cat : string;
  ts_us : float;  (** microseconds since {!enable}-time *)
  dur_us : float;  (** span duration; [0] for instants *)
  depth : int;  (** span-nesting depth at emission *)
  args : (string * string) list;
}

type state = {
  mutable on : bool;
  mutable t0 : float;  (** [Unix.gettimeofday] at enable-time *)
  mutable ring : event array;
  mutable ring_len : int;  (** events stored (≤ capacity) *)
  mutable ring_next : int;  (** next write slot *)
  mutable chan : out_channel option;
  mutable path : string option;
  mutable depth : int;
  mutable dropped : int;  (** ring evictions since enable *)
}

let dummy_event =
  { kind = Instant; name = ""; cat = ""; ts_us = 0.; dur_us = 0.; depth = 0; args = [] }

let state =
  {
    on = false;
    t0 = 0.;
    ring = [||];
    ring_len = 0;
    ring_next = 0;
    chan = None;
    path = None;
    depth = 0;
    dropped = 0;
  }

let enabled () = state.on
let default_capacity = 4096

(* Trace loss is itself observable: /metrics exposes how many events the
   ring evicted and how big the ring is, so a truncated /trace drain is
   detectable instead of silent. *)
let dropped_gauge =
  Metrics.gauge "ivm_trace_dropped"
    ~help:"Trace events evicted from the ring buffer since enable"

let capacity_gauge =
  Metrics.gauge "ivm_trace_ring_capacity"
    ~help:"Capacity of the trace ring buffer (0 until first enabled)"

(* Spans can be emitted from worker domains during parallel fan-out
   ([Ivm_par]); the ring cursor and file channel are shared, so event
   emission is serialized on [record_lock].  The [depth] counter stays a
   best-effort plain field: concurrent spans would interleave depths
   anyway, and viewers nest by timestamp containment, not depth. *)
let record_lock = Mutex.create ()

let now_us () = (Unix.gettimeofday () -. state.t0) *. 1e6

(* ---------------- sinks ---------------- *)

let record_ring ev =
  let cap = Array.length state.ring in
  if cap > 0 then begin
    if state.ring_len = cap then begin
      state.dropped <- state.dropped + 1;
      Metrics.set dropped_gauge (float_of_int state.dropped)
    end
    else state.ring_len <- state.ring_len + 1;
    state.ring.(state.ring_next) <- ev;
    state.ring_next <- (state.ring_next + 1) mod cap
  end

let event_json ev =
  Json.Obj
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("ph", Json.Str (match ev.kind with Span -> "X" | Instant -> "i"));
      ("ts", Json.Num ev.ts_us);
      ("dur", Json.Num ev.dur_us);
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ( "args",
        Json.Obj
          (("depth", Json.int ev.depth)
          :: List.map (fun (k, v) -> (k, Json.Str v)) ev.args) );
    ]

let record ev =
  Mutex.lock record_lock;
  record_ring ev;
  (match state.chan with
  | None -> ()
  | Some oc ->
    output_string oc (Json.to_string (event_json ev));
    output_string oc ",\n");
  Mutex.unlock record_lock

(* ---------------- control ---------------- *)

(** Start tracing into the ring buffer only. *)
let enable ?(capacity = default_capacity) () =
  state.on <- true;
  state.t0 <- Unix.gettimeofday ();
  state.ring <- Array.make capacity dummy_event;
  state.ring_len <- 0;
  state.ring_next <- 0;
  state.depth <- 0;
  state.dropped <- 0;
  Metrics.set dropped_gauge 0.;
  Metrics.set capacity_gauge (float_of_int capacity)

(** Start tracing into [path] (Chrome trace format) and the ring buffer.
    Truncates an existing file. *)
let enable_file ?capacity path =
  enable ?capacity ();
  let oc = open_out path in
  output_string oc "[\n";
  state.chan <- Some oc;
  state.path <- Some path

(** Stop tracing; flushes and closes the file sink if open.  Returns the
    path written, if any. *)
let disable () =
  let written = state.path in
  (match state.chan with
  | Some oc ->
    flush oc;
    close_out oc
  | None -> ());
  state.chan <- None;
  state.path <- None;
  state.on <- false;
  written

let file_path () = state.path
let dropped () = state.dropped

(* Readers race worker-domain emission, so snapshots take [record_lock]. *)
let ring_snapshot () =
  let cap = Array.length state.ring in
  if cap = 0 || state.ring_len = 0 then []
  else begin
    let start = (state.ring_next - state.ring_len + cap) mod cap in
    List.init state.ring_len (fun i -> state.ring.((start + i) mod cap))
  end

(** Ring contents, oldest first. *)
let ring_events () : event list =
  Mutex.lock record_lock;
  let evs = ring_snapshot () in
  Mutex.unlock record_lock;
  evs

(** Ring contents oldest first, emptying the ring atomically — consumed
    by the monitor's [/trace] endpoint so repeated drains see disjoint
    event batches.  [dropped] accounting is untouched (it counts ring
    evictions, not drains). *)
let drain () : event list =
  Mutex.lock record_lock;
  let evs = ring_snapshot () in
  state.ring_len <- 0;
  state.ring_next <- 0;
  Mutex.unlock record_lock;
  evs

(** Events as a Chrome [trace_event] JSON array (the same object shape
    the file sink writes line by line). *)
let events_json (evs : event list) : Json.t =
  Json.List (List.map event_json evs)

(* ---------------- emission ---------------- *)

let no_args () = []

(** [span name f] runs [f], recording a complete event around it when
    tracing is enabled.  [args] is evaluated after [f] returns (once, only
    when tracing).  Exceptions propagate; the event is still recorded with
    an ["exn"] argument so a trace never loses the span that failed. *)
let span ?(cat = "ivm") ?(args = no_args) name f =
  if not state.on then f ()
  else begin
    let ts = now_us () in
    let depth = state.depth in
    state.depth <- depth + 1;
    match f () with
    | x ->
      state.depth <- depth;
      record
        { kind = Span; name; cat; ts_us = ts; dur_us = now_us () -. ts; depth;
          args = args () };
      x
    | exception e ->
      state.depth <- depth;
      record
        {
          kind = Span;
          name;
          cat;
          ts_us = ts;
          dur_us = now_us () -. ts;
          depth;
          args = [ ("exn", Printexc.to_string e) ];
        };
      raise e
  end

(** A zero-duration instant event. *)
let instant ?(cat = "ivm") ?(args = no_args) name =
  if state.on then
    record
      { kind = Instant; name; cat; ts_us = now_us (); dur_us = 0.;
        depth = state.depth; args = args () }
