(** Request-scoped tracing for the serve path ([ivm_reqtrace]).

    Every inbound frame gets a request id (client-proposed through the
    protocol's trace-context field, server-assigned otherwise) and a
    handle that rides with the work across domain hops — reader decode →
    apply-queue → writer normalize / WAL append / maintain / group wait /
    fsync / publish → ack on the owning reader.  Each hop appends one
    {!add_stage}; {!finish} folds the chain into:

    - [ivm_serve_stage_ns{stage=...}] and [ivm_serve_request_ns{op=...}]
      histograms ({!Metrics});
    - a bounded ring of completed breakdowns, served as JSON by the
      monitor's [GET /requestz] ({!recent_json});
    - the Chrome trace ring — one {!Trace.span_at} per stage in the lane
      of the domain that performed it, {!Trace.flow} arrows at each
      domain hop;
    - a structured slow-request log line when the end-to-end time
      exceeds [IVM_SLOW_REQUEST_MS] (same pattern as {!Attribution}'s
      slow-batch line).

    The handle is single-writer by construction: it crosses domains only
    inside mutex-guarded queues, each hop mutating it strictly after the
    previous one released it.  Disabled ([IVM_REQTRACE=0]) the entire
    facility is one boolean load per request — {!start} returns [None]
    and every other entry point no-ops on [None]. *)

(** Reflects [IVM_REQTRACE] ([0]/[off]/[false]/[no] disable; default
    on), overridable with {!set_enabled}. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** One completed stage of a request. *)
type stage = {
  stage : string;
  t0 : float;  (** stage start, [Unix.gettimeofday] seconds *)
  t1 : float;  (** stage end *)
  tid : int;  (** domain that performed the stage *)
}

type t

(** The canonical apply-path stage chain, in order: [decode], [queue],
    [normalize], [wal_append], [maintain], [group_wait], [fsync],
    [publish], [ack].  These exact strings label [ivm_serve_stage_ns]. *)
val apply_stages : string list

(** The query-path chain: [decode], [query], [ack]. *)
val query_stages : string list

(** Open a request record; [None] when tracing is disabled.  [id] is the
    client-proposed trace context (ignored when empty — a fresh server
    id [r-<n>] is assigned). *)
val start : ?id:string -> sid:int -> op:string -> unit -> t option

val id : t -> string

(** Append one completed stage ([t0]/[t1] in [Unix.gettimeofday]
    seconds); tags it with the calling domain.  No-op on [None]. *)
val add_stage : t option -> string -> t0:float -> t1:float -> unit

(** Stages recorded so far, chronological, as [(stage, ns)] pairs — the
    payload of the [Applied] reply's optional timings field. *)
val timings : t option -> (string * int) list

(** Close the request and fold it into every sink (histograms, ring,
    Chrome trace, slow log).  Returns end-to-end nanoseconds (request
    start to last stage end) so callers can keep per-session aggregates.
    Idempotent; [None] on [None] or a second call. *)
val finish : t option -> int option

type completed = {
  c_id : string;
  c_sid : int;
  c_op : string;
  c_start : float;  (** epoch seconds *)
  c_total_ns : int;
  c_stages : stage list;  (** chronological *)
}

(** Completed requests, newest first (bounded ring of
    {!ring_capacity}). *)
val recent : unit -> completed list

val ring_capacity : int

(** Empty the completed ring (tests use this for isolation). *)
val reset : unit -> unit

(** The [GET /requestz] document: [{enabled; capacity; requests}],
    requests newest first, each with its per-stage breakdown. *)
val recent_json : unit -> Json.t

(** Override the [IVM_SLOW_REQUEST_MS] threshold ([None] disables the
    slow-request log). *)
val set_slow_threshold_ms : float option -> unit
