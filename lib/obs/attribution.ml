(** Per-rule cost attribution for maintenance batches.

    Aggregate counters ({!Metrics}, [Ivm_eval.Stats]) answer "how much
    work happened"; this module answers {e which rule} did it.  Both the
    literature on Datalog materialisation maintenance and our own bench
    traces show batch cost concentrating in a few rules/strata, so the
    evaluator records, per rule evaluation: wall time, Δ-tuples in/out,
    join probes, tuples scanned, derivations, and demand-built overlay
    indexes.  Rows aggregate per [(rule, stratum, phase)] into a bounded
    per-batch table; the finished batch backs the shell's [explain last],
    the monitor's [/statusz], labeled [/metrics] families, and a
    slow-batch structured log line.

    {b Lifecycle.}  [View_manager] brackets each maintenance batch with
    {!batch_begin}/{!batch_end}.  In between, the algorithm layers
    ([Seminaive], [Counting], [Dred], …) publish the ambient {e context}
    — stratum and phase — sequentially {e before} each parallel fan-out
    (every task of one fan-out shares that context), and [Rule_eval]
    calls {!record} once per rule evaluation from whichever domain ran
    it.  [record] takes plain ints so the work deltas can come from
    [Stats.local_since] (exact per-domain work; a global snapshot would
    fold other domains' concurrent bumps into this rule).

    {b Wall-time semantics.}  Row wall times are per-domain and overlap
    under parallel fan-out, so their sum — {!type-batch.busy_wall_ns} —
    can legitimately exceed the batch's elapsed
    {!type-batch.total_wall_ns}; with one domain busy ≤ total (the
    bracket also covers per-batch bookkeeping outside rule evaluation).

    {b Cost.}  Attribution is on by default; set [IVM_ATTRIBUTION=0] (or
    [off]/[false]/[no]) to disable, reducing {!record} to one boolean
    load at each rule evaluation.  Measured overhead is recorded in
    EXPERIMENTS.md E15. *)

(* ---------------- enable switch ---------------- *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "IVM_ATTRIBUTION" with
    | Some ("0" | "off" | "false" | "no" | "OFF" | "FALSE") -> false
    | _ -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* ---------------- ambient context ---------------- *)

(* Set sequentially by the algorithm layer before each parallel fan-out;
   worker domains only read it.  The pool's task handoff (mutex-guarded
   queue) provides the happens-before edge, so a plain ref suffices. *)
let context : (int * string) ref = ref (0, "")

(** [set_context ~stratum ~phase] tags subsequent {!record} calls.  Call
    from the coordinating domain only, never during a fan-out. *)
let set_context ~stratum ~phase = context := (stratum, phase)

let get_context () = !context

(* ---------------- labeled metrics ---------------- *)

(* Cumulative per-rule families.  Counters are refreshed at batch_end
   from the finalized rows (quiescent — no handle contention with
   workers); the eval-time histogram is fed one real sample per rule
   evaluation from [record], under the attribution lock.  Label
   cardinality is bounded by the program's rule count plus max_rows. *)
type handles = {
  h_wall : Metrics.counter;
  h_din : Metrics.counter;
  h_dout : Metrics.counter;
  h_probes : Metrics.counter;
  h_idx : Metrics.counter;
  h_hist : Metrics.histogram;
}

let handle_cache : (string, handles) Hashtbl.t = Hashtbl.create 64

let handles_for rule =
  match Hashtbl.find_opt handle_cache rule with
  | Some h -> h
  | None ->
    let labels = [ ("rule", rule) ] in
    let h =
      {
        h_wall =
          Metrics.counter ~labels "ivm_rule_wall_ns_total"
            ~help:"Wall time spent evaluating this rule, nanoseconds";
        h_din =
          Metrics.counter ~labels "ivm_rule_delta_in_total"
            ~help:"Delta tuples seeding this rule's evaluations";
        h_dout =
          Metrics.counter ~labels "ivm_rule_delta_out_total"
            ~help:"Delta tuples derived by this rule";
        h_probes =
          Metrics.counter ~labels "ivm_rule_probes_total"
            ~help:"Index probes performed by this rule";
        h_idx =
          Metrics.counter ~labels "ivm_rule_index_builds_total"
            ~help:"Overlay/base indexes built on demand during this rule";
        h_hist =
          Metrics.histogram ~labels "ivm_rule_eval_ns"
            ~help:"Per-evaluation wall time of this rule, nanoseconds";
      }
    in
    Hashtbl.replace handle_cache rule h;
    h

(* ---------------- per-batch table ---------------- *)

type row = {
  rule : string;
  stratum : int;
  phase : string;  (** e.g. ["delta"], ["delete"], ["rederive"], ["insert"] *)
  mutable evals : int;  (** rule evaluations folded into this row *)
  mutable wall_ns : int;
  mutable din : int;  (** Δ-tuples seeding the evaluations *)
  mutable dout : int;  (** derivations emitted *)
  mutable probes : int;
  mutable scanned : int;
  mutable derivations : int;
  mutable index_builds : int;
}

type batch = {
  algorithm : string;
  seq : int;  (** batch number since process start (1-based) *)
  total_wall_ns : int;  (** elapsed wall clock of the whole batch *)
  busy_wall_ns : int;  (** Σ row wall; may exceed total under parallelism *)
  truncated : int;  (** evaluations folded into no row (table full) *)
  rows : row list;  (** wall-time descending *)
}

(* The table is bounded: a pathological program can't grow it without
   limit.  Overflow evaluations are counted, not silently dropped. *)
let max_rows = 512

type collecting = {
  c_algorithm : string;
  c_seq : int;
  c_rows : (string * int * string, row) Hashtbl.t;
  mutable c_truncated : int;
}

let lock = Mutex.create ()
let batch_seq = ref 0
let current : collecting option ref = ref None
let history_limit = 8
let history : batch list ref = ref []

let batch_begin ~algorithm =
  if !enabled_flag then begin
    Mutex.lock lock;
    incr batch_seq;
    current :=
      Some
        {
          c_algorithm = algorithm;
          c_seq = !batch_seq;
          c_rows = Hashtbl.create 64;
          c_truncated = 0;
        };
    Mutex.unlock lock
  end

(** Fold one rule evaluation into the current batch (no-op when disabled
    or outside a batch).  Called from worker domains; serialized on an
    internal lock — the lock is per {e rule evaluation}, not per tuple,
    so contention stays negligible next to the join work itself. *)
let record ~rule ~wall_ns ~din ~dout ~probes ~scanned ~derivations
    ~index_builds =
  if !enabled_flag then begin
    Mutex.lock lock;
    (match !current with
    | None -> ()
    | Some c -> (
      (* one real sample per evaluation — the histogram's latency shape
         is genuine, not a batch-end reconstruction from row means *)
      Metrics.observe (handles_for rule).h_hist wall_ns;
      let stratum, phase = !context in
      let key = (rule, stratum, phase) in
      match Hashtbl.find_opt c.c_rows key with
      | Some r ->
        r.evals <- r.evals + 1;
        r.wall_ns <- r.wall_ns + wall_ns;
        r.din <- r.din + din;
        r.dout <- r.dout + dout;
        r.probes <- r.probes + probes;
        r.scanned <- r.scanned + scanned;
        r.derivations <- r.derivations + derivations;
        r.index_builds <- r.index_builds + index_builds
      | None ->
        if Hashtbl.length c.c_rows >= max_rows then
          c.c_truncated <- c.c_truncated + 1
        else
          Hashtbl.replace c.c_rows key
            { rule; stratum; phase; evals = 1; wall_ns; din; dout; probes;
              scanned; derivations; index_builds }));
    Mutex.unlock lock
  end

(* Refresh the cumulative per-rule counters from the finalized rows —
   O(rows), not O(evaluations); the histogram was already fed per-eval
   in [record]. *)
let publish_metrics (rows : row list) =
  List.iter
    (fun r ->
      let h = handles_for r.rule in
      Metrics.add h.h_wall r.wall_ns;
      Metrics.add h.h_din r.din;
      Metrics.add h.h_dout r.dout;
      Metrics.add h.h_probes r.probes;
      Metrics.add h.h_idx r.index_builds)
    rows

(* ---------------- slow-batch log ---------------- *)

let slow_threshold_ms : float option ref =
  ref
    (match Sys.getenv_opt "IVM_SLOW_BATCH_MS" with
    | Some s -> float_of_string_opt s
    | None -> None)

(** Override the [IVM_SLOW_BATCH_MS] threshold ([None] disables). *)
let set_slow_threshold_ms t = slow_threshold_ms := t

let row_json (r : row) : Json.t =
  Json.Obj
    [
      ("rule", Json.Str r.rule);
      ("stratum", Json.int r.stratum);
      ("phase", Json.Str r.phase);
      ("evals", Json.int r.evals);
      ("wall_ns", Json.int r.wall_ns);
      ("delta_in", Json.int r.din);
      ("delta_out", Json.int r.dout);
      ("probes", Json.int r.probes);
      ("scanned", Json.int r.scanned);
      ("derivations", Json.int r.derivations);
      ("index_builds", Json.int r.index_builds);
    ]

let batch_json (b : batch) : Json.t =
  Json.Obj
    [
      ("algorithm", Json.Str b.algorithm);
      ("seq", Json.int b.seq);
      ("total_wall_ns", Json.int b.total_wall_ns);
      ("busy_wall_ns", Json.int b.busy_wall_ns);
      ("truncated", Json.int b.truncated);
      ("rules", Json.List (List.map row_json b.rows));
    ]

let log_slow (b : batch) threshold_ms =
  let total_ms = float_of_int b.total_wall_ns /. 1e6 in
  if total_ms > threshold_ms then begin
    let top = List.filteri (fun i _ -> i < 3) b.rows in
    let line =
      Json.Obj
        [
          ("event", Json.Str "slow_batch");
          ("algorithm", Json.Str b.algorithm);
          ("seq", Json.int b.seq);
          ("total_ms", Json.Num total_ms);
          ("threshold_ms", Json.Num threshold_ms);
          ("busy_ms", Json.Num (float_of_int b.busy_wall_ns /. 1e6));
          ("top_rules", Json.List (List.map row_json top));
        ]
    in
    prerr_endline (Json.to_string line)
  end

(* ---------------- finalization & access ---------------- *)

(** Close the current batch: sort rows by wall time, store it in the
    bounded history, refresh the labeled metric families, and emit the
    slow-batch log line if over threshold.  Returns the finalized batch
    ([None] when attribution is off or no batch was open). *)
let batch_end ~total_wall_ns : batch option =
  if not !enabled_flag then None
  else begin
    Mutex.lock lock;
    let finished =
      match !current with
      | None -> None
      | Some c ->
        current := None;
        let rows = Hashtbl.fold (fun _ r acc -> r :: acc) c.c_rows [] in
        let rows =
          List.sort
            (fun a b ->
              match compare b.wall_ns a.wall_ns with
              | 0 -> compare (a.rule, a.stratum, a.phase) (b.rule, b.stratum, b.phase)
              | n -> n)
            rows
        in
        let busy = List.fold_left (fun acc r -> acc + r.wall_ns) 0 rows in
        let b =
          {
            algorithm = c.c_algorithm;
            seq = c.c_seq;
            total_wall_ns;
            busy_wall_ns = busy;
            truncated = c.c_truncated;
            rows;
          }
        in
        history := b :: (if List.length !history >= history_limit
                         then List.filteri (fun i _ -> i < history_limit - 1) !history
                         else !history);
        Some b
    in
    Mutex.unlock lock;
    (match finished with
    | Some b ->
      publish_metrics b.rows;
      (match !slow_threshold_ms with
      | Some t -> log_slow b t
      | None -> ())
    | None -> ());
    finished
  end

(** Most recently finished batch, if any. *)
let last () : batch option =
  Mutex.lock lock;
  let b = match !history with [] -> None | b :: _ -> Some b in
  Mutex.unlock lock;
  b

(** Finished batches, newest first (bounded history). *)
let recent () : batch list =
  Mutex.lock lock;
  let bs = !history in
  Mutex.unlock lock;
  bs

(* ---------------- rendering ---------------- *)

let ns_pp ppf ns =
  if ns >= 1_000_000_000 then
    Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then
    Format.fprintf ppf "%.2fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else Format.fprintf ppf "%dns" ns

(** The [explain last] cost table: batch header, then one line per row,
    slowest first ([top] bounds the rows printed; defaults to all). *)
let pp_batch ?top ppf (b : batch) =
  Format.fprintf ppf "batch #%d  algorithm=%s  total=%a  busy=%a  rules=%d%s@."
    b.seq b.algorithm ns_pp b.total_wall_ns ns_pp b.busy_wall_ns
    (List.length b.rows)
    (if b.truncated > 0 then
       Printf.sprintf "  (truncated: %d evals beyond %d-row table)"
         b.truncated max_rows
     else "");
  let rows =
    match top with
    | None -> b.rows
    | Some k -> List.filteri (fun i _ -> i < k) b.rows
  in
  Format.fprintf ppf
    "  %-10s %7s %5s %-9s %6s %7s %7s %9s %8s %6s@." "wall" "evals"
    "strat" "phase" "din" "dout" "probes" "scanned" "derived" "idx";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-10s %7d %5d %-9s %6d %7d %7d %9d %8d %6d  %s@."
        (Format.asprintf "%a" ns_pp r.wall_ns)
        r.evals r.stratum
        (if r.phase = "" then "-" else r.phase)
        r.din r.dout r.probes r.scanned r.derivations r.index_builds r.rule)
    rows;
  if top <> None && List.length b.rows > List.length rows then
    Format.fprintf ppf "  … %d more rules@." (List.length b.rows - List.length rows)
