(** The metrics registry: named counters, gauges, and log-scale histograms
    with optional labels.

    Handles are cheap mutable records — registration does one hashtable
    lookup, after which a bump is a single field write, so hot paths
    register once and hold the handle (see [Ivm_eval.Stats]).  Registering
    the same [(name, labels)] pair again returns the {e same} handle, so
    independent call sites share one time series.

    Counters are {b overflow-safe}: additions saturate at [max_int] instead
    of wrapping negative.  {!reset} zeroes every registered metric but
    keeps all handles valid — snapshots taken before a reset are stale and
    must not be subtracted across it (see [Ivm_eval.Stats.since]).

    Histograms use base-2 log buckets: bucket 0 holds values [<= 0], bucket
    [i >= 1] holds values from [2^(i-1)] inclusive to [2^i] exclusive.
    That fixes the memory cost
    (64 ints) while spanning nanosecond latencies to billion-tuple sizes;
    {!percentile} answers with the containing bucket's upper bound, i.e.
    within 2x of the true value.

    The registry {e table} is mutex-protected: registration, enumeration
    ({!dump}), {!reset} and {!clear} may run from any domain — the live
    monitoring endpoint ({!Ivm_monitor}) renders [dump ()] from its accept
    domain while maintenance registers per-relation gauges.  Bumps on
    handles stay plain unsynchronized field writes: a reader racing a bump
    can observe a slightly stale value (never a torn one), which is the
    usual scrape-time contract.  Producers that need {e exact} totals
    across domains stage their counts in per-domain state and fold in at
    quiescence — see [Ivm_eval.Stats] for the evaluator's work counters
    and the pool's per-participant counters in [Ivm_par.Pool]. *)

type labels = (string * string) list

type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  buckets : int array;  (** 64 log2 buckets *)
  mutable hcount : int;
  mutable hsum : int;
  mutable hmin : int;
  mutable hmax : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registered = { name : string; labels : labels; metric : metric }

let registry : (string, registered) Hashtbl.t = Hashtbl.create 64

(* Guards [registry] and [help_table].  Handle bumps are NOT under this
   lock (single field writes; see the module comment). *)
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* Per metric-family help text, keyed by metric name (one help per
   family, whatever its label sets — the Prometheus exposition format
   allows one [# HELP] line per family). *)
let help_table : (string, string) Hashtbl.t = Hashtbl.create 64

(** Attach (or replace) the help text of metric family [name]. *)
let set_help name help = locked (fun () -> Hashtbl.replace help_table name help)

let help name = locked (fun () -> Hashtbl.find_opt help_table name)

(** Canonical key: name plus sorted [k=v] labels. *)
let key name (labels : labels) =
  match labels with
  | [] -> name
  | _ ->
    let sorted = List.sort compare labels in
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) sorted)
    ^ "}"

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register ?help name labels make extract =
  locked (fun () ->
      (match help with Some h -> Hashtbl.replace help_table name h | None -> ());
      let k = key name labels in
      match Hashtbl.find_opt registry k with
      | Some r -> (
        match extract r.metric with
        | Some h -> h
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" k
               (kind_name r.metric)))
      | None ->
        let h, m = make () in
        Hashtbl.replace registry k
          { name; labels = List.sort compare labels; metric = m };
        h)

let counter ?(labels = []) ?help name : counter =
  register ?help name labels
    (fun () ->
      let c = { count = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge ?(labels = []) ?help name : gauge =
  register ?help name labels
    (fun () ->
      let g = { value = 0. } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let n_buckets = 64

let histogram ?(labels = []) ?help name : histogram =
  register ?help name labels
    (fun () ->
      let h =
        { buckets = Array.make n_buckets 0; hcount = 0; hsum = 0;
          hmin = max_int; hmax = min_int }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

(* ---------------- updates ---------------- *)

(** Saturating add: never wraps past [max_int]. *)
let add (c : counter) n =
  if n > 0 && c.count > max_int - n then c.count <- max_int
  else c.count <- c.count + n

let inc c = if c.count < max_int then c.count <- c.count + 1

let set (g : gauge) v = g.value <- v

(** Bucket index of [v]: 0 for [v <= 0], else [floor(log2 v) + 1],
    clamped to the last bucket. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (n_buckets - 1)
  end

(** Inclusive upper bound of bucket [i] ([0] for bucket 0). *)
let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

let observe (h : histogram) v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.hcount <- h.hcount + 1;
  if v > 0 && h.hsum > max_int - v then h.hsum <- max_int
  else h.hsum <- h.hsum + v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v

(* ---------------- reads ---------------- *)

let counter_value (c : counter) = c.count
let gauge_value (g : gauge) = g.value
let histogram_count (h : histogram) = h.hcount
let histogram_sum (h : histogram) = h.hsum
let histogram_min (h : histogram) = if h.hcount = 0 then 0 else h.hmin
let histogram_max (h : histogram) = if h.hcount = 0 then 0 else h.hmax

(** [percentile h p] for [p] in [[0, 1]]: the upper bound of the bucket
    containing the [ceil(p * count)]-th smallest observation (0 on an
    empty histogram).  Within a factor of 2 of the exact answer. *)
let percentile (h : histogram) p =
  if h.hcount = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p *. float_of_int h.hcount))) in
    let rank = min rank h.hcount in
    let cum = ref 0 and result = ref (bucket_upper (n_buckets - 1)) in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= rank then begin
           result := bucket_upper i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

(** [(upper_bound, cumulative_count)] per bucket, from bucket 0 through
    the bucket holding the largest observation (empty list on an empty
    histogram).  Upper bounds are inclusive ({!bucket_upper}), counts are
    cumulative — exactly the shape Prometheus [_bucket{le=...}] samples
    want (the renderer appends the [+Inf] bucket itself). *)
let cumulative_buckets (h : histogram) : (int * int) list =
  if h.hcount = 0 then []
  else begin
    let last = bucket_of h.hmax in
    let acc = ref 0 in
    List.init (last + 1) (fun i ->
        acc := !acc + h.buckets.(i);
        (bucket_upper i, !acc))
  end

(* ---------------- enumeration ---------------- *)

(** All registered metrics, sorted by canonical key. *)
let dump () : registered list =
  locked (fun () -> Hashtbl.fold (fun _ r acc -> r :: acc) registry [])
  |> List.sort (fun a b -> compare (key a.name a.labels) (key b.name b.labels))

(** Zero every registered metric; handles stay valid. *)
let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ r ->
          match r.metric with
          | Counter c -> c.count <- 0
          | Gauge g -> g.value <- 0.
          | Histogram h ->
            Array.fill h.buckets 0 n_buckets 0;
            h.hcount <- 0;
            h.hsum <- 0;
            h.hmin <- max_int;
            h.hmax <- min_int)
        registry)

(** Drop every registration (tests use this for isolation). *)
let clear () =
  locked (fun () ->
      Hashtbl.reset registry;
      Hashtbl.reset help_table)

let pp_value ppf = function
  | Counter c -> Format.fprintf ppf "%d" c.count
  | Gauge g ->
    if Float.is_integer g.value then Format.fprintf ppf "%.0f" g.value
    else Format.fprintf ppf "%g" g.value
  | Histogram h ->
    Format.fprintf ppf "count=%d sum=%d min=%d p50=%d p90=%d p99=%d max=%d"
      h.hcount h.hsum (histogram_min h) (percentile h 0.5) (percentile h 0.9)
      (percentile h 0.99) (histogram_max h)

(** One metric per line, [name{labels} = value]. *)
let pp ppf () =
  List.iter
    (fun r ->
      Format.fprintf ppf "%s = %a@." (key r.name r.labels) pp_value r.metric)
    (dump ())

(** The registry as JSON (used by the bench [--metrics-json] report). *)
let to_json () : Json.t =
  Json.List
    (List.map
       (fun r ->
         let value =
           match r.metric with
           | Counter c -> [ ("type", Json.Str "counter"); ("value", Json.int c.count) ]
           | Gauge g -> [ ("type", Json.Str "gauge"); ("value", Json.Num g.value) ]
           | Histogram h ->
             [
               ("type", Json.Str "histogram");
               ("count", Json.int h.hcount);
               ("sum", Json.int h.hsum);
               ("min", Json.int (histogram_min h));
               ("p50", Json.int (percentile h 0.5));
               ("p90", Json.int (percentile h 0.9));
               ("p99", Json.int (percentile h 0.99));
               ("max", Json.int (histogram_max h));
             ]
         in
         Json.Obj
           (("name", Json.Str r.name)
           :: ("labels",
               Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.labels))
           :: value))
       (dump ()))
