(** Per-rule cost attribution for maintenance batches.

    Aggregate counters answer "how much work happened"; this module
    answers {e which rule} did it.  [View_manager] brackets each
    maintenance batch with {!batch_begin}/{!batch_end}; the algorithm
    layers publish the ambient stratum/phase {e context} sequentially
    before each parallel fan-out; [Rule_eval] calls {!record} once per
    rule evaluation (from whichever domain ran it) with work deltas from
    [Ivm_eval.Stats.local_since], so per-rule numbers stay exact under
    parallel evaluation.  The finished batch backs the shell's
    [explain last], the monitor's [/statusz], cumulative labeled
    [/metrics] families ([ivm_rule_wall_ns_total{rule=…}] etc.), and an
    optional slow-batch JSON log line on stderr
    ([IVM_SLOW_BATCH_MS]).

    Row wall times are per-domain and overlap under parallel fan-out, so
    {!type-batch.busy_wall_ns} (their sum) may exceed the elapsed
    {!type-batch.total_wall_ns}; with one domain, busy ≤ total.

    On by default; [IVM_ATTRIBUTION=0] (or [off]/[false]/[no]) disables,
    reducing {!record} to a boolean load.  Overhead is measured in
    EXPERIMENTS.md E15. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Tag subsequent {!record} calls with a stratum and phase (e.g.
    ["delta"], ["delete"], ["rederive"], ["insert"]).  Call from the
    coordinating domain only, before a fan-out — never during one. *)
val set_context : stratum:int -> phase:string -> unit

val get_context : unit -> int * string

type row = {
  rule : string;
  stratum : int;
  phase : string;
  mutable evals : int;  (** rule evaluations folded into this row *)
  mutable wall_ns : int;
  mutable din : int;  (** Δ-tuples seeding the evaluations *)
  mutable dout : int;  (** tuples derived *)
  mutable probes : int;
  mutable scanned : int;
  mutable derivations : int;
  mutable index_builds : int;
}

type batch = {
  algorithm : string;
  seq : int;  (** batch number since process start (1-based) *)
  total_wall_ns : int;  (** elapsed wall clock of the whole batch *)
  busy_wall_ns : int;  (** Σ row wall; may exceed total under parallelism *)
  truncated : int;  (** evaluations folded into no row (table full) *)
  rows : row list;  (** wall-time descending *)
}

(** Rows the per-batch table holds before counting overflow into
    {!type-batch.truncated}. *)
val max_rows : int

(** Open a fresh attribution table for the coming batch (no-op when
    disabled). *)
val batch_begin : algorithm:string -> unit

(** Fold one rule evaluation into the current batch — a no-op when
    disabled or outside a batch.  Safe from worker domains (internal
    lock, taken once per rule evaluation). *)
val record :
  rule:string -> wall_ns:int -> din:int -> dout:int -> probes:int ->
  scanned:int -> derivations:int -> index_builds:int -> unit

(** Close the current batch: sort rows by wall time, store it in the
    bounded history, refresh the labeled metric families, emit the
    slow-batch log line if over threshold.  Returns the finalized batch
    ([None] when disabled or no batch was open). *)
val batch_end : total_wall_ns:int -> batch option

(** Most recently finished batch, if any. *)
val last : unit -> batch option

(** Finished batches, newest first (bounded history of 8). *)
val recent : unit -> batch list

(** Override the [IVM_SLOW_BATCH_MS] threshold; [None] disables the
    slow-batch log line. *)
val set_slow_threshold_ms : float option -> unit

val row_json : row -> Json.t
val batch_json : batch -> Json.t

(** The [explain last] cost table: batch header, then one line per rule,
    slowest first.  [top] bounds the rows printed (default: all). *)
val pp_batch : ?top:int -> Format.formatter -> batch -> unit
