(* Request-scoped tracing for the serve path.

   One [t] accompanies each inbound frame from reader decode to the ack
   write, crossing domains with the work itself: the reader stamps the
   decode and queue stages, the writer stamps normalize / WAL append /
   maintain / group-wait / fsync / publish, and the owning reader stamps
   the ack.  The handle travels inside the job through mutex-guarded
   queues, so exactly one domain mutates it at a time and every handoff
   carries a happens-before edge — no lock of its own is needed until
   [finish] folds the record into the shared sinks:

   - per-stage latency histograms ([ivm_serve_stage_ns{stage=...}]) and
     a per-op end-to-end histogram ([ivm_serve_request_ns{op=...}]);
   - a bounded ring of completed request breakdowns, served as JSON by
     the monitor's [GET /requestz];
   - the Chrome trace ring, as [Trace.span_at] complete events in the
     lane of the domain that did each stage, linked by [Trace.flow]
     arrows wherever the request hopped domains;
   - a structured slow-request log line (threshold [IVM_SLOW_REQUEST_MS],
     the same shape as [Attribution]'s slow-batch line).

   Cost: with [IVM_REQTRACE=0] every entry point is one boolean load and
   [start] returns [None], so the serve path carries no timestamps at
   all; measured overhead when on is recorded in EXPERIMENTS.md E19. *)

(* ---------------- enable switch ---------------- *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "IVM_REQTRACE" with
    | Some ("0" | "off" | "false" | "no" | "OFF" | "FALSE") -> false
    | _ -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* ---------------- the request record ---------------- *)

type stage = {
  stage : string;
  t0 : float;  (** stage start, [Unix.gettimeofday] seconds *)
  t1 : float;  (** stage end *)
  tid : int;  (** domain that performed the stage *)
}

type t = {
  id : string;
  sid : int;
  op : string;
  started : float;
  flow_id : int;
  mutable stages : stage list;  (** reverse chronological while open *)
  mutable finished : bool;
}

(* The canonical apply-path chain, in order.  Tests and the CI smoke
   grep these exact stage labels; [queue]..[publish] also name the
   [ivm_serve_stage_ns] label values. *)
let apply_stages =
  [ "decode"; "queue"; "normalize"; "wal_append"; "maintain"; "group_wait";
    "fsync"; "publish"; "ack" ]

let query_stages = [ "decode"; "query"; "ack" ]

let next_rid = Atomic.make 1
let next_flow = Atomic.make 1

let start ?id ~sid ~op () : t option =
  if not !enabled_flag then None
  else
    let id =
      match id with
      | Some s when s <> "" -> s
      | _ -> Printf.sprintf "r-%d" (Atomic.fetch_and_add next_rid 1)
    in
    Some
      {
        id;
        sid;
        op;
        started = Unix.gettimeofday ();
        flow_id = Atomic.fetch_and_add next_flow 1;
        stages = [];
        finished = false;
      }

let id (r : t) = r.id

(** Append one completed stage; no-op on [None] (tracing off). *)
let add_stage (rq : t option) name ~t0 ~t1 =
  match rq with
  | None -> ()
  | Some r ->
    r.stages <-
      { stage = name; t0; t1; tid = (Domain.self () :> int) } :: r.stages

let stage_ns (s : stage) =
  let ns = int_of_float ((s.t1 -. s.t0) *. 1e9) in
  if ns < 0 then 0 else ns

(** Stages recorded so far, chronological, as [(stage, ns)] — the shape
    the [Applied] reply's optional timings field carries. *)
let timings (rq : t option) : (string * int) list =
  match rq with
  | None -> []
  | Some r -> List.rev_map (fun s -> (s.stage, stage_ns s)) r.stages

(* ---------------- metric sinks ---------------- *)

(* one registry lookup per distinct stage/op, then shared handles *)
let hist_lock = Mutex.create ()
let stage_hists : (string, Metrics.histogram) Hashtbl.t = Hashtbl.create 16
let op_hists : (string, Metrics.histogram) Hashtbl.t = Hashtbl.create 4

let memo lock tbl make key =
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt tbl key with
    | Some h -> h
    | None ->
      let h = make key in
      Hashtbl.replace tbl key h;
      h
  in
  Mutex.unlock lock;
  h

let stage_hist stage =
  memo hist_lock stage_hists
    (fun stage ->
      Metrics.histogram
        ~labels:[ ("stage", stage) ]
        "ivm_serve_stage_ns"
        ~help:"Serve-path request latency decomposed by stage, nanoseconds")
    stage

let op_hist op =
  memo hist_lock op_hists
    (fun op ->
      Metrics.histogram ~labels:[ ("op", op) ] "ivm_serve_request_ns"
        ~help:"End-to-end request latency (decode to ack written), nanoseconds")
    op

(* ---------------- completed-request ring ---------------- *)

type completed = {
  c_id : string;
  c_sid : int;
  c_op : string;
  c_start : float;  (** epoch seconds *)
  c_total_ns : int;
  c_stages : stage list;  (** chronological *)
}

let ring_capacity = 128
let ring_lock = Mutex.create ()
let ring : completed list ref = ref []  (* newest first, bounded *)
let ring_len = ref 0

let push_completed c =
  Mutex.lock ring_lock;
  ring := c :: (if !ring_len >= ring_capacity then
                  List.filteri (fun i _ -> i < ring_capacity - 1) !ring
                else !ring);
  ring_len := min ring_capacity (!ring_len + 1);
  Mutex.unlock ring_lock

(** Completed requests, newest first (bounded to [ring_capacity]). *)
let recent () : completed list =
  Mutex.lock ring_lock;
  let l = !ring in
  Mutex.unlock ring_lock;
  l

let reset () =
  Mutex.lock ring_lock;
  ring := [];
  ring_len := 0;
  Mutex.unlock ring_lock

let stage_json (c : completed) (s : stage) =
  Json.Obj
    [
      ("stage", Json.Str s.stage);
      ("start_us", Json.Num ((s.t0 -. c.c_start) *. 1e6));
      ("dur_ns", Json.int (stage_ns s));
      ("tid", Json.int s.tid);
    ]

let completed_json (c : completed) =
  Json.Obj
    [
      ("id", Json.Str c.c_id);
      ("sid", Json.int c.c_sid);
      ("op", Json.Str c.c_op);
      ("start_unix_s", Json.Num c.c_start);
      ("total_ns", Json.int c.c_total_ns);
      ("stages", Json.List (List.map (stage_json c) c.c_stages));
    ]

(** The [GET /requestz] document: tracing state plus the ring of
    completed request breakdowns, newest first. *)
let recent_json () : Json.t =
  Json.Obj
    [
      ("enabled", Json.Bool !enabled_flag);
      ("capacity", Json.int ring_capacity);
      ("requests", Json.List (List.map completed_json (recent ())));
    ]

(* ---------------- slow-request log ---------------- *)

let slow_threshold_ms : float option ref =
  ref
    (match Sys.getenv_opt "IVM_SLOW_REQUEST_MS" with
    | Some s -> float_of_string_opt s
    | None -> None)

(** Override the [IVM_SLOW_REQUEST_MS] threshold ([None] disables). *)
let set_slow_threshold_ms t = slow_threshold_ms := t

let log_slow (c : completed) threshold_ms =
  let total_ms = float_of_int c.c_total_ns /. 1e6 in
  if total_ms > threshold_ms then
    prerr_endline
      (Json.to_string
         (Json.Obj
            [
              ("event", Json.Str "slow_request");
              ("id", Json.Str c.c_id);
              ("sid", Json.int c.c_sid);
              ("op", Json.Str c.c_op);
              ("total_ms", Json.Num total_ms);
              ("threshold_ms", Json.Num threshold_ms);
              ("stages", Json.List (List.map (stage_json c) c.c_stages));
            ]))

(* ---------------- completion ---------------- *)

(** Close the request: fold its stages into the histograms, the
    completed ring, the Chrome trace (one [span_at] per stage in the
    performing domain's lane, flow arrows at every domain hop) and, if
    over threshold, the slow-request log.  Returns the end-to-end
    nanoseconds (request start to last stage end) so the caller can
    maintain per-session aggregates; idempotent, [None]-tolerant. *)
let finish (rq : t option) : int option =
  match rq with
  | None -> None
  | Some r when r.finished -> None
  | Some r ->
    r.finished <- true;
    let stages = List.rev r.stages in
    let last_end =
      List.fold_left (fun acc s -> if s.t1 > acc then s.t1 else acc)
        r.started stages
    in
    let total_ns =
      let ns = int_of_float ((last_end -. r.started) *. 1e9) in
      if ns < 0 then 0 else ns
    in
    List.iter (fun s -> Metrics.observe (stage_hist s.stage) (stage_ns s))
      stages;
    Metrics.observe (op_hist r.op) total_ns;
    let c =
      {
        c_id = r.id;
        c_sid = r.sid;
        c_op = r.op;
        c_start = r.started;
        c_total_ns = total_ns;
        c_stages = stages;
      }
    in
    push_completed c;
    (match !slow_threshold_ms with
    | Some th -> log_slow c th
    | None -> ());
    if Trace.enabled () then begin
      let args =
        [ ("req", r.id); ("sid", string_of_int r.sid); ("op", r.op) ]
      in
      List.iter
        (fun s ->
          Trace.span_at ~cat:"req" ~args ~tid:s.tid ~ts:s.t0
            ~dur:(s.t1 -. s.t0) s.stage)
        stages;
      match stages with
      | [] -> ()
      | first :: rest ->
        Trace.flow ~cat:"req" ~tid:first.tid ~phase:`Start ~id:r.flow_id
          ~ts:first.t0 r.id;
        let last =
          List.fold_left
            (fun prev s ->
              if s.tid <> prev.tid then
                Trace.flow ~cat:"req" ~tid:s.tid ~phase:`Step ~id:r.flow_id
                  ~ts:s.t0 r.id;
              s)
            first rest
        in
        Trace.flow ~cat:"req" ~tid:last.tid ~phase:`End ~id:r.flow_id
          ~ts:last.t1 r.id
    end;
    Some total_ns
