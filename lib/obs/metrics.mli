(** The metrics registry: named counters, gauges, and log₂-bucket
    histograms with optional labels.

    Handles are cheap mutable records — registration does one hashtable
    lookup, after which a bump is a single field write, so hot paths
    register once and hold the handle (see [Ivm_eval.Stats]).  Registering
    the same [(name, labels)] pair again returns the {e same} handle, so
    independent call sites share one time series.

    Counters are {b overflow-safe}: additions saturate at [max_int] instead
    of wrapping negative.  {!reset} zeroes every registered metric but
    keeps all handles valid — snapshots taken before a reset are stale and
    must not be subtracted across it (see [Ivm_eval.Stats.since]).

    Histograms use base-2 log buckets: bucket 0 holds values [<= 0], bucket
    [i >= 1] holds values from [2^(i-1)] inclusive to [2^i] exclusive.
    That fixes the memory cost (64 ints) while spanning nanosecond
    latencies to billion-tuple sizes; {!percentile} answers with the
    containing bucket's upper bound, i.e. within 2x of the true value.

    The registry {e table} (registration, {!dump}, {!reset}, {!clear},
    help texts) is mutex-protected and safe to use from any domain — the
    live monitoring endpoint ([Ivm_monitor]) renders {!dump} from its
    accept domain.  Bumps on handles stay plain field writes: a
    concurrent reader can observe a slightly stale value, never a torn
    one.  Producers needing exact cross-domain totals stage per-domain
    state and fold in at quiescence ([Ivm_eval.Stats],
    [Ivm_par.Pool]). *)

type labels = (string * string) list

(** The handle records are deliberately concrete: hot paths read and
    write the fields directly ([Ivm_eval.Stats] mirrors its per-domain
    cell sums straight into [count]). *)

type counter = { mutable count : int }

type gauge = { mutable value : float }

type histogram = {
  buckets : int array;  (** 64 log₂ buckets *)
  mutable hcount : int;
  mutable hsum : int;
  mutable hmin : int;
  mutable hmax : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registered = { name : string; labels : labels; metric : metric }

(* ---------------- registration ---------------- *)

(** [counter ?labels ?help name] registers (or retrieves) the counter of
    this [(name, labels)] series.  [help], when given, (re)binds the
    family's help text — see {!set_help}.
    @raise Invalid_argument if the series exists with a different kind. *)
val counter : ?labels:labels -> ?help:string -> string -> counter

val gauge : ?labels:labels -> ?help:string -> string -> gauge
val histogram : ?labels:labels -> ?help:string -> string -> histogram

(** Attach (or replace) the help text of metric family [name] — one help
    per family, rendered as the [# HELP] line of the Prometheus
    exposition. *)
val set_help : string -> string -> unit

val help : string -> string option

(* ---------------- updates ---------------- *)

(** Saturating add: never wraps past [max_int].  Negative [n] subtracts. *)
val add : counter -> int -> unit

val inc : counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> int -> unit

(* ---------------- reads ---------------- *)

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_count : histogram -> int
val histogram_sum : histogram -> int
val histogram_min : histogram -> int
val histogram_max : histogram -> int

(** Bucket index of a value: 0 for [v <= 0], else [floor(log2 v) + 1],
    clamped to the last bucket. *)
val bucket_of : int -> int

(** Inclusive upper bound of bucket [i] ([0] for bucket 0). *)
val bucket_upper : int -> int

val n_buckets : int

(** [percentile h p] for [p] in [[0, 1]]: the upper bound of the bucket
    containing the [ceil(p * count)]-th smallest observation (0 on an
    empty histogram).  Within a factor of 2 of the exact answer. *)
val percentile : histogram -> float -> int

(** [(upper_bound, cumulative_count)] per bucket, bucket 0 through the
    bucket holding the largest observation (empty on an empty
    histogram).  The shape Prometheus [_bucket{le=...}] samples want;
    the renderer appends [+Inf] itself. *)
val cumulative_buckets : histogram -> (int * int) list

(* ---------------- enumeration ---------------- *)

(** All registered metrics, sorted by canonical [name{k=v,…}] key. *)
val dump : unit -> registered list

(** Zero every registered metric; handles stay valid. *)
val reset : unit -> unit

(** Drop every registration and help text (tests use this for
    isolation).  Previously returned handles keep working but are no
    longer enumerated. *)
val clear : unit -> unit

(** One metric per line, [name{labels} = value]. *)
val pp : Format.formatter -> unit -> unit

(** The registry as JSON (used by the bench [--metrics-json] report). *)
val to_json : unit -> Json.t
