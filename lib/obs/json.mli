(** Minimal JSON: an emitter and a small recursive-descent parser.

    Just enough for the Chrome [trace_event] writer ({!Trace}), the bench
    harness's [--metrics-json] report, and the monitor's JSON endpoints —
    no external dependency.  Numbers are floats on parse (ints print
    without a fractional part when exact); strings are escaped per
    RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [int n] is [Num (float_of_int n)]. *)
val int : int -> t

(** Compact (no-whitespace) serialization. *)
val to_string : t -> string

exception Parse_error of string

(** Parse a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)
val of_string : string -> t

(* Accessors for tests / report readers.  All are total: a shape
   mismatch yields [None]. *)

val member : string -> t -> t option
val to_float_opt : t -> float option
val to_string_opt : t -> string option
