(** Minimal JSON: an emitter and a small recursive-descent parser.

    Just enough for the Chrome [trace_event] writer ({!Trace}) and the
    bench harness's [--metrics-json] report — no external dependency.
    Numbers are floats on parse (ints print without a fractional part when
    exact); strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* ---------------- emission ---------------- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buf buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_to buf k;
        Buffer.add_string buf "\":";
        to_buf buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buf buf j;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Parse_error of string

let of_string (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let add_utf8 buf code =
    (* encode one BMP code point; surrogate pairs are not recombined *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          add_utf8 buf code;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------------- accessors (for tests / report readers) ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function Num f -> Some f | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
