(** Span-based tracer with a near-zero-cost disabled path.

    Instrumented code wraps regions in {!span}; when tracing is off (the
    default) that is one boolean load and a direct call.  When on, each
    span records a Chrome [trace_event] {e complete} event (["ph": "X"])
    with microsecond timestamp and duration, delivered to two sinks:

    - an in-memory {b ring buffer} (always, bounded, oldest dropped —
      eviction count and capacity are exposed as the
      [ivm_trace_dropped] / [ivm_trace_ring_capacity] gauges, so trace
      loss is visible on [/metrics]);
    - an optional {b JSONL writer} whose output loads directly in
      [chrome://tracing] / Perfetto.

    Span [args] are passed as a thunk evaluated {e after} the spanned
    function returns — so instrumentation can report deltas of work
    counters measured across the span without paying for them when
    tracing is off.

    Emission {e and} control are safe from any domain: [record],
    {!enable}, {!disable} and the ring readers all serialize on one
    internal lock, so reader/writer server domains can emit while
    another domain toggles tracing or drains [/trace].

    Cross-domain work uses {!span_at} (explicit timestamps, emitted
    after the fact in the lane of the domain that did the work) and
    {!flow} (Chrome flow arrows tying one request's spans together
    across lanes). *)

type kind = Span | Instant | Flow_start | Flow_step | Flow_end

type event = {
  kind : kind;  (** a span is a complete event even at zero duration *)
  name : string;
  cat : string;
  ts_us : float;  (** microseconds since {!enable}-time *)
  dur_us : float;  (** span duration; [0] for instants *)
  depth : int;  (** span-nesting depth at emission *)
  tid : int;  (** emitting domain id (the Chrome [tid] lane) *)
  id : int;  (** flow correlation id; [0] for non-flow events *)
  args : (string * string) list;
}

val enabled : unit -> bool
val default_capacity : int

(** Start tracing into the ring buffer only ([capacity] defaults to
    {!default_capacity}).  Resets the ring, the drop count, and the
    clock origin. *)
val enable : ?capacity:int -> unit -> unit

(** Start tracing into [path] (Chrome trace format, one event per line
    inside a JSON array) and the ring buffer.  Truncates an existing
    file. *)
val enable_file : ?capacity:int -> string -> unit

(** Stop tracing; flushes and closes the file sink if open.  Returns the
    path written, if any.  The ring keeps its contents and stays
    readable. *)
val disable : unit -> string option

val file_path : unit -> string option

(** Ring evictions since the last {!enable}. *)
val dropped : unit -> int

(** Ring contents, oldest first (non-destructive snapshot). *)
val ring_events : unit -> event list

(** Ring contents oldest first, emptying the ring atomically — consumed
    by the monitor's [/trace] endpoint so repeated drains see disjoint
    event batches.  Does not touch {!dropped}. *)
val drain : unit -> event list

(** Events as a Chrome [trace_event] JSON array. *)
val events_json : event list -> Json.t

(** [span name f] runs [f], recording a complete event around it when
    tracing is enabled.  [args] is evaluated after [f] returns (once,
    only when tracing).  Exceptions propagate; the event is still
    recorded with an ["exn"] argument. *)
val span :
  ?cat:string -> ?args:(unit -> (string * string) list) -> string ->
  (unit -> 'a) -> 'a

(** A zero-duration instant event. *)
val instant :
  ?cat:string -> ?args:(unit -> (string * string) list) -> string -> unit

(** [span_at ~ts ~dur name] records a complete event with an explicit
    start time ([Unix.gettimeofday] seconds, converted to the trace
    clock) and duration in seconds — for work measured on one domain and
    emitted later (a finished request replaying its stage chain).  [tid]
    defaults to the calling domain's id; pass the id of the domain that
    performed the work to place the span in its lane. *)
val span_at :
  ?cat:string -> ?args:(string * string) list -> ?tid:int -> ts:float ->
  dur:float -> string -> unit

(** [flow ~phase ~id ~ts name] emits a Chrome flow event ([`Start] →
    ["s"], [`Step] → ["t"], [`End] → ["f"]) with correlation [id] at
    absolute time [ts] in lane [tid] — the arrows linking one request's
    spans across domains. *)
val flow :
  ?cat:string -> ?tid:int -> phase:[ `Start | `Step | `End ] -> id:int ->
  ts:float -> string -> unit
