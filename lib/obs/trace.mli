(** Span-based tracer with a near-zero-cost disabled path.

    Instrumented code wraps regions in {!span}; when tracing is off (the
    default) that is one boolean load and a direct call.  When on, each
    span records a Chrome [trace_event] {e complete} event (["ph": "X"])
    with microsecond timestamp and duration, delivered to two sinks:

    - an in-memory {b ring buffer} (always, bounded, oldest dropped —
      eviction count and capacity are exposed as the
      [ivm_trace_dropped] / [ivm_trace_ring_capacity] gauges, so trace
      loss is visible on [/metrics]);
    - an optional {b JSONL writer} whose output loads directly in
      [chrome://tracing] / Perfetto.

    Span [args] are passed as a thunk evaluated {e after} the spanned
    function returns — so instrumentation can report deltas of work
    counters measured across the span without paying for them when
    tracing is off.

    Emission is safe from worker domains (serialized on an internal
    lock); control operations ({!enable}, {!disable}) belong to the
    coordinating domain. *)

type kind = Span | Instant

type event = {
  kind : kind;  (** a span is a complete event even at zero duration *)
  name : string;
  cat : string;
  ts_us : float;  (** microseconds since {!enable}-time *)
  dur_us : float;  (** span duration; [0] for instants *)
  depth : int;  (** span-nesting depth at emission *)
  args : (string * string) list;
}

val enabled : unit -> bool
val default_capacity : int

(** Start tracing into the ring buffer only ([capacity] defaults to
    {!default_capacity}).  Resets the ring, the drop count, and the
    clock origin. *)
val enable : ?capacity:int -> unit -> unit

(** Start tracing into [path] (Chrome trace format, one event per line
    inside a JSON array) and the ring buffer.  Truncates an existing
    file. *)
val enable_file : ?capacity:int -> string -> unit

(** Stop tracing; flushes and closes the file sink if open.  Returns the
    path written, if any.  The ring keeps its contents and stays
    readable. *)
val disable : unit -> string option

val file_path : unit -> string option

(** Ring evictions since the last {!enable}. *)
val dropped : unit -> int

(** Ring contents, oldest first (non-destructive snapshot). *)
val ring_events : unit -> event list

(** Ring contents oldest first, emptying the ring atomically — consumed
    by the monitor's [/trace] endpoint so repeated drains see disjoint
    event batches.  Does not touch {!dropped}. *)
val drain : unit -> event list

(** Events as a Chrome [trace_event] JSON array. *)
val events_json : event list -> Json.t

(** [span name f] runs [f], recording a complete event around it when
    tracing is enabled.  [args] is evaluated after [f] returns (once,
    only when tracing).  Exceptions propagate; the event is still
    recorded with an ["exn"] argument. *)
val span :
  ?cat:string -> ?args:(unit -> (string * string) list) -> string ->
  (unit -> 'a) -> 'a

(** A zero-duration instant event. *)
val instant :
  ?cat:string -> ?args:(unit -> (string * string) list) -> string -> unit
