(** Durable views: a directory holding one {!Snapshot} plus one {!Wal}.

    Layout: [dir/snapshot.ivm] (the last compacted state) and
    [dir/wal.ivm] (validated change batches appended {e before} the
    maintenance algorithm applies them).  Restart is therefore a
    [load + replay-Δ] maintenance run — the paper's
    "maintenance beats recomputation" argument applied to recovery —
    instead of re-deriving every view from the base relations.

    The caller (normally [Ivm.View_manager]) drives the protocol:

    - {!initialize} a fresh directory from a fully materialized database;
    - {!open_} an existing one: the snapshot database comes back with the
      surviving log tail, which the caller replays through its normal
      maintenance path, then keeps the handle for appending;
    - {!append} each validated change batch before applying it;
    - {!compact} folds the log into a fresh snapshot (also the rotation
      point after rule changes, which are not logged).

    Torn or checksum-failing log tails are truncated on open and reported
    in {!recovery}; a crash between snapshot rename and log reset leaves
    records the snapshot already covers, which {!open_} skips by sequence
    number. *)

type changes = Wal.changes

exception Corrupt of string
(** A snapshot or log header too damaged to recover from ({!Wal.Corrupt}
    / {!Snapshot.Corrupt} re-raised under one name). *)

type t

type recovery = {
  snapshot_seq : int;  (** WAL sequence the snapshot covers through *)
  replayed : changes list;  (** surviving log tail, in append order *)
  skipped_records : int;  (** records the snapshot already covered *)
  truncated_bytes : int;  (** torn/corrupt tail bytes dropped *)
  damage : string option;  (** what stopped the log scan, if anything *)
}

type status = {
  dir : string;
  seq : int;  (** last durable sequence number *)
  snapshot_seq : int;
  snapshot_bytes : int;
  wal_records : int;  (** live records in the log tail *)
  wal_bytes : int;  (** log file size, header included *)
}

val snapshot_file : string -> string
val wal_file : string -> string

(** Is [dir] an initialized store (has a snapshot)? *)
val exists : string -> bool

(** Create [dir] (and parents) if needed, snapshot [db] into it, open an
    empty log.  @raise Invalid_argument if [dir] is already a store. *)
val initialize : dir:string -> Ivm_eval.Database.t -> t

(** Open an existing store: load + verify the snapshot, truncate any
    damaged log tail, and return the materialized database plus the
    records to replay.  The caller must apply [recovery.replayed] (in
    order) through its maintenance path to reach the durable state.
    @raise Corrupt if the snapshot or the log header is unrecoverable. *)
val open_ : dir:string -> Ivm_eval.Database.t * t * recovery

(** Log one validated change batch.  [~sync:true] (the default) fsyncs
    before returning; [~sync:false] defers the fsync for a group commit —
    append the whole queue, then make it all durable with one {!sync}
    (see {!Wal.append}). *)
val append : ?sync:bool -> t -> changes -> unit

(** Force every deferred append durable — the single fsync that commits
    a group. *)
val sync : t -> unit

(** Fold the log into a fresh snapshot of [db] (which must reflect every
    appended batch) and reset the log. *)
val compact : t -> Ivm_eval.Database.t -> unit

val status : t -> status
val dir : t -> string
val close : t -> unit

val pp_recovery : Format.formatter -> recovery -> unit
val pp_status : Format.formatter -> status -> unit
