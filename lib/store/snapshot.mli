(** Versioned, checksummed binary snapshots of a whole database.

    A snapshot captures everything needed to reopen a
    [Ivm_eval.Database.t] with {b zero re-evaluation}: the program rules,
    the declared base relations, the semantics flag, the DISTINCT view
    set, {e every} stored relation — base and derived — with its signed
    derivation counts, and the signatures of the registered incremental
    aggregate indexes (their accumulator states are rebuilt
    deterministically from the loaded source relations).

    The byte format (magic ["IVMSNAP1"], version [u32], payload, trailing
    CRC-32 over everything before it) is specified field-by-field in
    [docs/PERSISTENCE.md].  Writing is atomic: the bytes go to a temporary
    file in the same directory, are fsync'd, and renamed over the
    destination, so a crash mid-save leaves the previous snapshot intact.

    [seq] is the write-ahead-log sequence number the snapshot covers
    through: recovery replays only log records with a higher sequence
    (see {!Wal} and {!Store}). *)

exception Corrupt of string

val magic : string
val version : int

(** Encode to bytes (including magic, version and CRC trailer). *)
val encode : seq:int -> Ivm_eval.Database.t -> string

(** Decode and verify; the returned database is fully materialized.
    @raise Corrupt on a bad magic, version, CRC or structure. *)
val decode : string -> Ivm_eval.Database.t * int

(** [save ~path ~seq db] — atomic write-fsync-rename.
    Returns the encoded size in bytes. *)
val save : path:string -> seq:int -> Ivm_eval.Database.t -> int

(** @raise Corrupt as {!decode}; @raise Sys_error if unreadable. *)
val load : path:string -> Ivm_eval.Database.t * int
