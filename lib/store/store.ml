module Database = Ivm_eval.Database
module Metrics = Ivm_obs.Metrics

type changes = Wal.changes

exception Corrupt of string

type t = {
  sdir : string;
  wal : Wal.t;
  mutable last_seq : int;
  mutable snap_seq : int;
  mutable snap_bytes : int;
}

type recovery = {
  snapshot_seq : int;
  replayed : changes list;
  skipped_records : int;
  truncated_bytes : int;
  damage : string option;
}

type status = {
  dir : string;
  seq : int;
  snapshot_seq : int;
  snapshot_bytes : int;
  wal_records : int;
  wal_bytes : int;
}

let snapshot_file dir = Filename.concat dir "snapshot.ivm"
let wal_file dir = Filename.concat dir "wal.ivm"
let exists dir = Sys.file_exists (snapshot_file dir)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let initialize ~dir (db : Database.t) : t =
  if exists dir then
    invalid_arg (Printf.sprintf "Store.initialize: %s is already a store" dir);
  mkdir_p dir;
  let snapshot_bytes = Snapshot.save ~path:(snapshot_file dir) ~seq:0 db in
  (* A stale log without a snapshot means a half-deleted store; start clean. *)
  if Sys.file_exists (wal_file dir) then Sys.remove (wal_file dir);
  let wal, _tail = Wal.open_append ~path:(wal_file dir) in
  { sdir = dir; wal; last_seq = 0; snap_seq = 0; snap_bytes = snapshot_bytes }

let open_ ~dir : Database.t * t * recovery =
  let snap_path = snapshot_file dir in
  if not (Sys.file_exists snap_path) then
    raise (Corrupt (Printf.sprintf "%s: no snapshot (not a store?)" dir));
  match
    let db, snapshot_seq = Snapshot.load ~path:snap_path in
    let wal, tail = Wal.open_append ~path:(wal_file dir) in
    (db, snapshot_seq, wal, tail)
  with
  | exception Snapshot.Corrupt msg -> raise (Corrupt msg)
  | exception Wal.Corrupt msg -> raise (Corrupt msg)
  | db, snapshot_seq, wal, tail ->
    (* A crash between snapshot rename and log reset leaves records the
       snapshot already covers; skip them by sequence number. *)
    let skipped, live =
      List.partition (fun (r : Wal.record) -> r.Wal.seq <= snapshot_seq) tail.Wal.records
    in
    let seq =
      List.fold_left (fun acc (r : Wal.record) -> max acc r.Wal.seq) snapshot_seq
        tail.Wal.records
    in
    let t =
      {
        sdir = dir;
        wal;
        last_seq = seq;
        snap_seq = snapshot_seq;
        snap_bytes =
          (try (Unix.stat snap_path).Unix.st_size with Unix.Unix_error _ -> 0);
      }
    in
    let recovery =
      {
        snapshot_seq;
        replayed = List.map (fun (r : Wal.record) -> r.Wal.changes) live;
        skipped_records = List.length skipped;
        truncated_bytes = tail.Wal.dropped_bytes;
        damage = tail.Wal.damage;
      }
    in
    (db, t, recovery)

let append ?sync:(s = true) t (changes : changes) : unit =
  t.last_seq <- t.last_seq + 1;
  Wal.append ~sync:s t.wal ~seq:t.last_seq changes

let sync t = Wal.sync t.wal

let compact t (db : Database.t) : unit =
  t.snap_bytes <- Snapshot.save ~path:(snapshot_file t.sdir) ~seq:t.last_seq db;
  Wal.reset t.wal;
  t.snap_seq <- t.last_seq

let status t : status =
  {
    dir = t.sdir;
    seq = t.last_seq;
    snapshot_seq = t.snap_seq;
    snapshot_bytes = t.snap_bytes;
    wal_records = Wal.record_count t.wal;
    wal_bytes = Wal.size t.wal;
  }

let dir t = t.sdir
let close t = Wal.close t.wal

let pp_recovery ppf (r : recovery) =
  Format.fprintf ppf "snapshot seq %d, %d record%s replayed" r.snapshot_seq
    (List.length r.replayed)
    (if List.length r.replayed = 1 then "" else "s");
  if r.skipped_records > 0 then
    Format.fprintf ppf ", %d already-covered record%s skipped" r.skipped_records
      (if r.skipped_records = 1 then "" else "s");
  match r.damage with
  | None -> ()
  | Some why ->
    Format.fprintf ppf "; dropped %d tail byte%s (%s)" r.truncated_bytes
      (if r.truncated_bytes = 1 then "" else "s")
      why

let pp_status ppf (s : status) =
  Format.fprintf ppf
    "store %s: seq %d (snapshot through %d, %d bytes), log %d record%s (%d bytes)"
    s.dir s.seq s.snapshot_seq s.snapshot_bytes s.wal_records
    (if s.wal_records = 1 then "" else "s")
    s.wal_bytes
