module Wire = Ivm_wire.Wire
module Crc32 = Ivm_wire.Crc32
module Relation = Ivm_relation.Relation
module Ast = Ivm_datalog.Ast
module Parser = Ivm_datalog.Parser
module Pretty = Ivm_datalog.Pretty
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Metrics = Ivm_obs.Metrics
module Trace = Ivm_obs.Trace

exception Corrupt of string

let magic = "IVMSNAP1"
let version = 1

let bytes_written_c = Metrics.counter "ivm_store_bytes_written_total"
let snapshots_c = Metrics.counter "ivm_store_snapshots_total"

(* ---------------- encoding ---------------- *)

(** Every predicate of the program, in a deterministic order — equal
    databases encode to equal snapshot bytes. *)
let stored_preds program =
  List.sort String.compare (Program.base_preds program @ Program.derived_preds program)

let encode ~seq (db : Database.t) : string =
  let program = Database.program db in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Wire.put_u32 buf version;
  Wire.put_u8 buf
    (match Database.semantics db with
    | Database.Set_semantics -> 0
    | Database.Duplicate_semantics -> 1);
  Wire.put_i64 buf seq;
  Wire.put_string buf
    (Format.asprintf "%a" Pretty.pp_program (Program.rules program));
  let base = List.sort String.compare (Program.base_preds program) in
  Wire.put_u32 buf (List.length base);
  List.iter
    (fun p ->
      Wire.put_string buf p;
      Wire.put_u32 buf (Program.arity program p))
    base;
  let distinct = Database.distinct_views db in
  Wire.put_u32 buf (List.length distinct);
  List.iter (Wire.put_string buf) distinct;
  let agg_sigs = Database.agg_signatures db in
  Wire.put_u32 buf (List.length agg_sigs);
  List.iter (Wire.put_string buf) agg_sigs;
  let preds = stored_preds program in
  Wire.put_u32 buf (List.length preds);
  List.iter
    (fun p ->
      Wire.put_string buf p;
      Wire.put_relation buf (Database.relation db p))
    preds;
  let body = Buffer.contents buf in
  let crc = Crc32.digest body in
  let trailer = Buffer.create 4 in
  Buffer.add_int32_le trailer crc;
  body ^ Buffer.contents trailer

(* ---------------- decoding ---------------- *)

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt ("snapshot: " ^ s))) fmt

let decode (s : string) : Database.t * int =
  let n = String.length s in
  if n < String.length magic + 4 + 4 then corrupt "file too short (%d bytes)" n;
  if String.sub s 0 (String.length magic) <> magic then corrupt "bad magic";
  let stored_crc = String.get_int32_le s (n - 4) in
  let computed = Crc32.update 0l s 0 (n - 4) in
  if stored_crc <> computed then
    corrupt "CRC mismatch (stored %08lx, computed %08lx)" stored_crc computed;
  let r = Wire.reader ~pos:(String.length magic) (String.sub s 0 (n - 4)) in
  try
    let v = Wire.get_u32 r in
    if v <> version then corrupt "unsupported version %d (expected %d)" v version;
    let semantics =
      match Wire.get_u8 r with
      | 0 -> Database.Set_semantics
      | 1 -> Database.Duplicate_semantics
      | b -> corrupt "bad semantics byte %d" b
    in
    let seq = Wire.get_i64 r in
    let program_src = Wire.get_string r in
    let extra_base =
      List.init (Wire.get_u32 r) (fun _ ->
          let name = Wire.get_string r in
          let arity = Wire.get_u32 r in
          (name, arity))
    in
    let distinct = List.init (Wire.get_u32 r) (fun _ -> Wire.get_string r) in
    let agg_sigs = List.init (Wire.get_u32 r) (fun _ -> Wire.get_string r) in
    let rels =
      List.init (Wire.get_u32 r) (fun _ ->
          let name = Wire.get_string r in
          let rel = Wire.get_relation r in
          (name, rel))
    in
    if Wire.remaining r <> 0 then
      corrupt "%d trailing bytes after payload" (Wire.remaining r);
    let program = Program.make ~extra_base (Parser.parse_rules program_src) in
    let db = Database.create ~semantics program in
    List.iter (fun (name, rel) -> Database.set_relation db name rel) rels;
    List.iter (fun v -> Database.mark_distinct db v) distinct;
    (* Rebuild the registered aggregate indexes from the loaded source
       relations: the accumulator state is a pure function of the source
       multiset, so this reproduces the pre-crash index exactly. *)
    List.iter
      (fun (rule : Ast.rule) ->
        List.iter
          (fun lit ->
            match lit with
            | Ast.Lagg agg ->
              let spec = Ivm_eval.Compile.compile_agg_spec agg in
              if List.mem spec.Ivm_eval.Compile.gsignature agg_sigs then
                ignore (Database.register_agg_index db spec)
            | Ast.Lpos _ | Ast.Lneg _ | Ast.Lcmp _ -> ())
          rule.Ast.body)
      (Program.rules program);
    (db, seq)
  with
  | Corrupt _ as e -> raise e
  | Wire.Corrupt msg -> corrupt "payload: %s" msg
  | Parser.Parse_error msg | Program.Program_error msg -> corrupt "program: %s" msg
  | Invalid_argument msg -> corrupt "inconsistent payload: %s" msg

(* ---------------- files ---------------- *)

let save ~path ~seq (db : Database.t) : int =
  Trace.span "store.snapshot_save" (fun () ->
      let data = encode ~seq db in
      let tmp = path ^ ".tmp" in
      Out_channel.with_open_gen
        [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
        0o644 tmp
        (fun oc ->
          Out_channel.output_string oc data;
          Fsutil.fsync_out_channel oc);
      Sys.rename tmp path;
      Fsutil.fsync_dir (Filename.dirname path);
      Metrics.inc snapshots_c;
      Metrics.add bytes_written_c (String.length data);
      String.length data)

let load ~path : Database.t * int =
  decode (In_channel.with_open_bin path In_channel.input_all)
