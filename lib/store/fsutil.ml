(** Durability helpers shared by {!Snapshot} and {!Wal}: fsync an open
    channel, and best-effort fsync of a directory so renames/creates
    survive a crash.  Both bump the [ivm_store_fsyncs_total] counter. *)

module Metrics = Ivm_obs.Metrics

let fsyncs_c = Metrics.counter "ivm_store_fsyncs_total"

let fsync_out_channel oc =
  Out_channel.flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  Metrics.inc fsyncs_c

(** Some filesystems refuse to fsync a directory fd; ignore failures. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        try
          Unix.fsync fd;
          Metrics.inc fsyncs_c
        with Unix.Unix_error _ -> ())
