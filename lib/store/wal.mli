(** The write-ahead change log: an append-only file of CRC-framed,
    length-prefixed change-set records, fsync'd on every append.

    Each record carries one validated change batch — the
    [(predicate, delta relation)] list a maintenance algorithm is about to
    apply — together with a monotonically increasing sequence number.
    The file starts with magic ["IVMWAL01"] and a [u32] version; each
    record is [u32] payload length, [u32] CRC-32 of the payload, then the
    payload.  [docs/PERSISTENCE.md] specifies every byte.

    {b Torn tails.}  A crash can leave a partially written (or, with disk
    damage, checksum-failing) final record.  {!load} stops at the first
    frame that is incomplete or fails its CRC, reports how many bytes
    follow the last valid record, and {!open_append} truncates them away
    so the next append starts on a clean boundary.  Valid records are
    never dropped: damage at byte [k] only discards data at offsets
    [>= k]. *)

module Relation = Ivm_relation.Relation

(** One change batch: deltas per base predicate, insertions positive,
    deletions negative — structurally [Ivm.Changes.t]. *)
type changes = (string * Relation.t) list

exception Corrupt of string

val magic : string
val version : int

(** Byte size of the file header ([magic] + version). *)
val header_size : int

type record = { seq : int; changes : changes; end_offset : int }
(** [end_offset] — file offset one past this record's frame; the
    truncation point that keeps records up to and including this one. *)

type tail = {
  records : record list;  (** every valid record, in file order *)
  valid_end : int;  (** offset one past the last valid record *)
  dropped_bytes : int;  (** bytes after [valid_end] (0 = clean file) *)
  damage : string option;  (** why scanning stopped, for the report *)
}

(** Scan a log file.  Missing file ⇒ empty tail.  @raise Corrupt only when
    the {e header} is malformed — tail damage is reported, not raised. *)
val load : path:string -> tail

type t

(** Open for appending, creating (with header) if missing, truncating a
    damaged tail if one was found.  Returns the handle and the scan
    result. *)
val open_append : path:string -> t * tail

(** Append one record.  With [~sync:true] (the default) the record is
    fsync'd durable before returning.  [~sync:false] is the group-commit
    half: the frame reaches the OS but not necessarily the disk — the
    caller batches several appends and then calls {!sync} once, paying a
    single fsync for the whole group.  Records appended with
    [~sync:false] {b must not be acknowledged or published} until that
    {!sync} returns. *)
val append : ?sync:bool -> t -> seq:int -> changes -> unit

(** Force every buffered append durable (the one fsync of a group
    commit). *)
val sync : t -> unit

(** Truncate to the empty state (header only) — log compaction, after the
    snapshot covering the records has been durably saved. *)
val reset : t -> unit

(** Bytes currently in the file (header included). *)
val size : t -> int

(** Records appended or recovered through this handle's lifetime. *)
val record_count : t -> int

val path : t -> string
val close : t -> unit
