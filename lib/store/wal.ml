module Wire = Ivm_wire.Wire
module Crc32 = Ivm_wire.Crc32
module Frame = Ivm_wire.Frame
module Relation = Ivm_relation.Relation
module Metrics = Ivm_obs.Metrics
module Trace = Ivm_obs.Trace

type changes = (string * Relation.t) list

exception Corrupt of string

let magic = "IVMWAL01"
let version = 1
let header_size = String.length magic + 4

let bytes_written_c = Metrics.counter "ivm_store_bytes_written_total"
let records_c = Metrics.counter "ivm_store_wal_records_total"
let wal_bytes_g = Metrics.gauge "ivm_store_wal_bytes"

(* ---------------- payload codec ---------------- *)

let encode_payload ~seq (changes : changes) : string =
  let buf = Buffer.create 256 in
  Wire.put_i64 buf seq;
  Wire.put_u32 buf (List.length changes);
  List.iter
    (fun (pred, delta) ->
      Wire.put_string buf pred;
      Wire.put_relation buf delta)
    changes;
  Buffer.contents buf

let decode_payload (s : string) : int * changes =
  let r = Wire.reader s in
  let seq = Wire.get_i64 r in
  let changes =
    List.init (Wire.get_u32 r) (fun _ ->
        let pred = Wire.get_string r in
        let delta = Wire.get_relation r in
        (pred, delta))
  in
  if Wire.remaining r <> 0 then
    Wire.corrupt r (Printf.sprintf "%d trailing bytes in record" (Wire.remaining r));
  (seq, changes)

(* ---------------- scanning ---------------- *)

type record = { seq : int; changes : changes; end_offset : int }

type tail = {
  records : record list;
  valid_end : int;
  dropped_bytes : int;
  damage : string option;
}

let load ~path : tail =
  if not (Sys.file_exists path) then
    { records = []; valid_end = header_size; dropped_bytes = 0; damage = None }
  else begin
    let s = In_channel.with_open_bin path In_channel.input_all in
    let n = String.length s in
    if n < header_size || String.sub s 0 (String.length magic) <> magic then
      raise (Corrupt (Printf.sprintf "%s: bad log header" path));
    let v = Int32.to_int (String.get_int32_le s (String.length magic)) in
    if v <> version then
      raise (Corrupt (Printf.sprintf "%s: unsupported log version %d" path v));
    let rec scan pos acc =
      let remaining = n - pos in
      if remaining = 0 then (List.rev acc, pos, None)
      else if remaining < 8 then
        (List.rev acc, pos, Some (Printf.sprintf "torn frame header (%d bytes)" remaining))
      else begin
        let len = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF in
        let stored_crc = String.get_int32_le s (pos + 4) in
        if len > remaining - 8 then
          ( List.rev acc,
            pos,
            Some
              (Printf.sprintf "torn record (frame wants %d bytes, %d in file)" len
                 (remaining - 8)) )
        else begin
          let computed = Crc32.update 0l s (pos + 8) len in
          if computed <> stored_crc then
            ( List.rev acc,
              pos,
              Some
                (Printf.sprintf "CRC mismatch (stored %08lx, computed %08lx)"
                   stored_crc computed) )
          else
            match decode_payload (String.sub s (pos + 8) len) with
            | seq, changes ->
              scan (pos + 8 + len) ({ seq; changes; end_offset = pos + 8 + len } :: acc)
            | exception Wire.Corrupt msg ->
              (List.rev acc, pos, Some ("undecodable record: " ^ msg))
        end
      end
    in
    let records, valid_end, damage = scan header_size [] in
    { records; valid_end; dropped_bytes = n - valid_end; damage }
  end

(* ---------------- appending ---------------- *)

type t = {
  wpath : string;
  mutable oc : Out_channel.t;
  mutable size : int;
  mutable count : int;
}

let fsync_oc = Fsutil.fsync_out_channel

let open_raw path =
  Out_channel.open_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path

let open_append ~path : t * tail =
  let fresh = not (Sys.file_exists path) in
  let tail = load ~path in
  if tail.dropped_bytes > 0 then Unix.truncate path tail.valid_end;
  let oc = open_raw path in
  if fresh then begin
    Out_channel.output_string oc magic;
    let b = Buffer.create 4 in
    Wire.put_u32 b version;
    Out_channel.output_string oc (Buffer.contents b);
    fsync_oc oc;
    Fsutil.fsync_dir (Filename.dirname path)
  end;
  let t = { wpath = path; oc; size = tail.valid_end; count = List.length tail.records } in
  Metrics.set wal_bytes_g (float_of_int t.size);
  (t, tail)

let fsyncs_c = Metrics.counter "ivm_store_wal_fsyncs_total"

let sync t =
  fsync_oc t.oc;
  Metrics.inc fsyncs_c

(* [~sync:false] is the group-commit half: the frame is written to the
   OS but not forced to disk, so a caller can append a whole queue of
   batches and pay one fsync ({!sync}) for all of them.  Until that
   [sync] returns, the records are not durable — the caller must not
   acknowledge or publish them (ARCHITECTURE.md invariant 11). *)
let append ?(sync = true) t ~seq (changes : changes) : unit =
  Trace.span "store.append" (fun () ->
      let payload = encode_payload ~seq changes in
      let frame = Frame.encode payload in
      Out_channel.output_string t.oc frame;
      if sync then (
        fsync_oc t.oc;
        Metrics.inc fsyncs_c);
      t.size <- t.size + String.length frame;
      t.count <- t.count + 1;
      Metrics.add bytes_written_c (String.length frame);
      Metrics.inc records_c;
      Metrics.set wal_bytes_g (float_of_int t.size))

let reset t =
  Out_channel.close t.oc;
  Unix.truncate t.wpath header_size;
  t.oc <- open_raw t.wpath;
  fsync_oc t.oc;
  t.size <- header_size;
  t.count <- 0;
  Metrics.set wal_bytes_g (float_of_int t.size)

let size t = t.size
let record_count t = t.count
let path t = t.wpath
let close t = Out_channel.close t.oc
