(** Length-prefixed, CRC-checked frames — the common envelope of
    write-ahead-log records and [ivm_serve] protocol messages.

    A frame is [u32] payload length, [u32] CRC-32 of the payload, then
    the payload bytes (all little-endian, no padding); see
    [docs/PERSISTENCE.md] §4 and [docs/PROTOCOL.md] §2.  The WAL appends
    {!encode} output to a file; the serve protocol writes it to sockets
    and reads it back with {!read_fd} — one implementation, so the two
    formats cannot drift. *)

(** The peer closed the descriptor mid-frame (EOF before the declared
    length arrived). *)
exception Closed

(** Declared payload lengths above this (64 MiB) are rejected as
    {!Wire.Corrupt} before any allocation: a desynchronized or hostile
    peer, not a real message. *)
val max_payload : int

(** [encode payload] is the 8-byte header followed by [payload]. *)
val encode : string -> string

(** Blocking read of exactly one frame; returns the verified payload.
    @raise Closed on EOF mid-frame;
    @raise Wire.Corrupt on an implausible length or CRC mismatch;
    @raise Unix.Unix_error as the underlying reads do (e.g. a socket
    receive timeout). *)
val read_fd : Unix.file_descr -> string

(** Blocking write of one complete frame.  @raise Closed if the
    descriptor stops accepting bytes. *)
val write_fd : Unix.file_descr -> string -> unit
