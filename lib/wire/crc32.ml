(* CRC-32/IEEE, reflected, init and final xor 0xFFFFFFFF — the variant
   used by zlib, Ethernet and PNG.  Table-driven, one byte per step. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let fold_byte table crc b =
  Int32.logxor
    table.(Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int b)) 0xFFl))
    (Int32.shift_right_logical crc 8)

let update_gen length get crc s pos len =
  if pos < 0 || len < 0 || pos > length s - len then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    c := fold_byte table !c (Char.code (get s i))
  done;
  Int32.logxor !c 0xFFFFFFFFl

let update crc s pos len = update_gen String.length String.get crc s pos len
let update_bytes crc b pos len = update_gen Bytes.length Bytes.get crc b pos len
let digest s = update 0l s 0 (String.length s)
