(** Binary wire codec shared by the snapshot, the write-ahead log, and
    the [ivm_serve] client/server protocol.

    Every multi-byte integer is {b little-endian} and fixed-width; strings
    and relations are length-prefixed.  The exact byte layout is specified
    in [docs/PERSISTENCE.md] (storage) and [docs/PROTOCOL.md] (network) —
    this module is their shared reference implementation, and the formats
    are a compatibility contract: changing any encoding requires bumping
    {!version} and the containing artifact's own version.

    Encoders append to a [Buffer.t]; decoders read from a [string] through
    a mutable cursor and raise {!Corrupt} (never [Invalid_argument] or an
    out-of-bounds crash) on malformed input, so callers can treat any
    decoding failure as a damaged artifact. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation

(** Malformed bytes: truncation, a bad tag, a negative length… the
    message says what was being decoded and where. *)
exception Corrupt of string

(** Codec generation, currently [1].  Containing artifacts (snapshot,
    WAL, serve protocol) embed it in their own version handshakes;
    readers reject generations they do not know. *)
val version : int

(** {2 Encoding} *)

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit

(** 64-bit two's-complement; accepts any OCaml [int]. *)
val put_i64 : Buffer.t -> int -> unit

(** [u32] byte length, then the raw bytes. *)
val put_string : Buffer.t -> string -> unit

(** One tagged value: tag byte [0]=Int, [1]=Float (IEEE-754 bits),
    [2]=Str, [3]=Bool. *)
val put_value : Buffer.t -> Value.t -> unit

(** The values in order, no length prefix (the container knows the
    arity). *)
val put_tuple : Buffer.t -> Tuple.t -> unit

(** Arity ([u32]), row count ([u32]), then per row the tuple followed by
    its signed count ([i64]).  Rows are written in {!Relation.to_sorted_list}
    order, so equal relations encode to equal bytes. *)
val put_relation : Buffer.t -> Relation.t -> unit

(** {2 Decoding} *)

type reader

(** [reader ?pos s] starts a cursor at [pos] (default 0). *)
val reader : ?pos:int -> string -> reader

(** Cursor position (bytes consumed from the start of the string). *)
val pos : reader -> int

(** Bytes remaining. *)
val remaining : reader -> int

val get_u8 : reader -> int
val get_u32 : reader -> int
val get_i64 : reader -> int
val get_string : reader -> string
val get_value : reader -> Value.t
val get_tuple : reader -> arity:int -> Tuple.t
val get_relation : reader -> Relation.t

(** Fail decoding with a {!Corrupt} carrying the cursor position. *)
val corrupt : reader -> string -> 'a
