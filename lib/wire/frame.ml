(* Length-prefixed, CRC-checked frames: the common envelope of the
   write-ahead log's records and the serve protocol's messages.

   frame := u32 payload-length L | u32 CRC-32(payload) | L payload bytes

   One implementation so the two consumers cannot drift: [Wal.append]
   writes [encode] output to the log, [Ivm_serve] writes it to sockets
   and reads it back with [read_fd]. *)

exception Closed

(* A frame header naming a multi-gigabyte payload is a desynchronized or
   hostile peer, not a real message; failing fast beats allocating. *)
let max_payload = 1 lsl 26

let encode (payload : string) : string =
  let frame = Buffer.create (String.length payload + 8) in
  Wire.put_u32 frame (String.length payload);
  Buffer.add_int32_le frame (Crc32.digest payload);
  Buffer.add_string frame payload;
  Buffer.contents frame

let rec read_exact fd buf off len =
  if len > 0 then begin
    let n = Unix.read fd buf off len in
    if n = 0 then raise Closed;
    read_exact fd buf (off + n) (len - n)
  end

let read_fd fd : string =
  let hdr = Bytes.create 8 in
  read_exact fd hdr 0 8;
  let len = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xFFFFFFFF in
  if len > max_payload then
    raise (Wire.Corrupt (Printf.sprintf "frame claims %d payload bytes" len));
  let stored_crc = Bytes.get_int32_le hdr 4 in
  let payload = Bytes.create len in
  read_exact fd payload 0 len;
  let payload = Bytes.unsafe_to_string payload in
  if Crc32.digest payload <> stored_crc then
    raise
      (Wire.Corrupt
         (Printf.sprintf "frame CRC mismatch (stored %08lx, computed %08lx)"
            stored_crc (Crc32.digest payload)));
  payload

let write_fd fd (payload : string) : unit =
  let s = encode payload in
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise Closed;
    off := !off + w
  done
