module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation

exception Corrupt of string

(* Codec generation.  Bumped whenever any encoding below changes shape;
   the containing artifacts (snapshot, WAL, serve protocol) embed it in
   their own version handshakes. *)
let version = 1

(* ---------------- encoding ---------------- *)

let put_u8 buf n = Buffer.add_uint8 buf (n land 0xff)
let put_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)
let put_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_value buf = function
  | Value.Int n ->
    put_u8 buf 0;
    put_i64 buf n
  | Value.Float f ->
    put_u8 buf 1;
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Str s ->
    put_u8 buf 2;
    put_string buf s
  | Value.Bool b ->
    put_u8 buf 3;
    put_u8 buf (if b then 1 else 0)

let put_tuple buf t = Array.iter (put_value buf) (Tuple.to_array t)

let put_relation buf r =
  put_u32 buf (Relation.arity r);
  put_u32 buf (Relation.cardinal r);
  List.iter
    (fun (t, c) ->
      put_tuple buf t;
      put_i64 buf c)
    (Relation.to_sorted_list r)

(* ---------------- decoding ---------------- *)

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }
let pos r = r.pos
let remaining r = String.length r.src - r.pos

let corrupt r msg = raise (Corrupt (Printf.sprintf "byte %d: %s" r.pos msg))

let need r n what =
  if remaining r < n then
    corrupt r (Printf.sprintf "truncated %s (need %d bytes, have %d)" what n (remaining r))

let get_u8 r =
  need r 1 "u8";
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8 "i64";
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let len = get_u32 r in
  need r len "string body";
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let get_value r =
  match get_u8 r with
  | 0 -> Value.Int (get_i64 r)
  | 1 ->
    need r 8 "float";
    let v = Value.Float (Int64.float_of_bits (String.get_int64_le r.src r.pos)) in
    r.pos <- r.pos + 8;
    v
  (* Interned on decode: a reloaded database shares string boxes with
     freshly parsed programs and keeps the [==] equality fast path. *)
  | 2 -> Value.str (get_string r)
  | 3 -> (
    match get_u8 r with
    | 0 -> Value.Bool false
    | 1 -> Value.Bool true
    | b -> corrupt r (Printf.sprintf "bad bool byte %d" b))
  | tag -> corrupt r (Printf.sprintf "bad value tag %d" tag)

let get_tuple r ~arity = Tuple.make (Array.init arity (fun _ -> get_value r))

let get_relation r =
  let arity = get_u32 r in
  if arity > 0xFFFF then corrupt r (Printf.sprintf "implausible arity %d" arity);
  let rows = get_u32 r in
  let rel = Relation.create ~size:(max 16 rows) arity in
  for _ = 1 to rows do
    let t = get_tuple r ~arity in
    let c = get_i64 r in
    Relation.add rel t c
  done;
  rel
