(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320], reflected) — the checksum
    guarding every persistent artifact of the store: the snapshot trailer
    and each write-ahead-log record frame (see [docs/PERSISTENCE.md]).

    The implementation is the standard 256-entry table driver; no external
    dependency.  Check values: [digest "" = 0l] and
    [digest "123456789" = 0xCBF43926l]. *)

(** [update crc s pos len] folds [len] bytes of [s] starting at [pos] into
    a running CRC ([0l] to start).  @raise Invalid_argument on a range
    outside [s]. *)
val update : int32 -> string -> int -> int -> int32

(** CRC-32 of a whole string. *)
val digest : string -> int32

(** CRC-32 of [Bytes.sub_string b pos len] without the copy. *)
val update_bytes : int32 -> bytes -> int -> int -> int32
