(** Recursive-descent parser for the Datalog dialect.

    Grammar (statements end with ['.']; [%]/[#] comments):
    {v
      statement := atom ( ":-" literal (("," | "&") literal)* )? "."
      literal   := ("not" | "!") atom
                 | "groupby" "(" atom "," "[" vars "]" "," VAR "=" aggcall ")"
                 | atom
                 | expr cmp expr
      aggcall   := ("min"|"max"|"sum"|"avg") "(" expr ")" | "count" "(" expr? ")"
      cmp       := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
      expr      := additive arithmetic over variables and constants
    v}

    A bodyless statement whose arguments are all ground is a fact
    ([link(a, b).]); the identifiers [true] and [false] denote booleans. *)

open Ast
module Value = Ivm_relation.Value

exception Parse_error of string

type state = { toks : Lexer.spanned array; mutable pos : int }

let fail_at (s : state) msg =
  let { Lexer.tok; line; col } = s.toks.(min s.pos (Array.length s.toks - 1)) in
  raise
    (Parse_error
       (Printf.sprintf "line %d, column %d: %s (found %s)" line col msg
          (Lexer.token_to_string tok)))

let peek s = s.toks.(s.pos).Lexer.tok
let peek2 s =
  if s.pos + 1 < Array.length s.toks then s.toks.(s.pos + 1).Lexer.tok
  else Lexer.EOF

let advance s = s.pos <- s.pos + 1

let expect s tok what =
  if peek s = tok then advance s else fail_at s ("expected " ^ what)

(* ---------------------------------------------------------------- *)
(* Expressions                                                       *)
(* ---------------------------------------------------------------- *)

let rec parse_expr s = parse_additive s

and parse_additive s =
  let rec loop acc =
    match peek s with
    | Lexer.PLUS ->
      advance s;
      loop (Eadd (acc, parse_multiplicative s))
    | Lexer.MINUS ->
      advance s;
      loop (Esub (acc, parse_multiplicative s))
    | _ -> acc
  in
  loop (parse_multiplicative s)

and parse_multiplicative s =
  let rec loop acc =
    match peek s with
    | Lexer.STAR ->
      advance s;
      loop (Emul (acc, parse_unary s))
    | Lexer.SLASH ->
      advance s;
      loop (Ediv (acc, parse_unary s))
    | _ -> acc
  in
  loop (parse_unary s)

and parse_unary s =
  match peek s with
  | Lexer.MINUS ->
    advance s;
    Eneg (parse_unary s)
  | _ -> parse_primary s

and parse_primary s =
  match peek s with
  | Lexer.INT n ->
    advance s;
    Eterm (Const (Value.Int n))
  | Lexer.FLOAT f ->
    advance s;
    Eterm (Const (Value.Float f))
  | Lexer.STRING str ->
    advance s;
    Eterm (Const (Value.str str))
  | Lexer.VAR v ->
    advance s;
    Eterm (Var v)
  | Lexer.IDENT "true" ->
    advance s;
    Eterm (Const (Value.Bool true))
  | Lexer.IDENT "false" ->
    advance s;
    Eterm (Const (Value.Bool false))
  | Lexer.IDENT name ->
    advance s;
    Eterm (Const (Value.str name))
  | Lexer.LPAREN ->
    advance s;
    let e = parse_expr s in
    expect s Lexer.RPAREN "')'";
    e
  | _ -> fail_at s "expected an expression"

(* ---------------------------------------------------------------- *)
(* Atoms and literals                                                *)
(* ---------------------------------------------------------------- *)

let parse_args s =
  expect s Lexer.LPAREN "'('";
  if peek s = Lexer.RPAREN then begin
    advance s;
    []
  end
  else begin
    let rec loop acc =
      let e = parse_expr s in
      match peek s with
      | Lexer.COMMA ->
        advance s;
        loop (e :: acc)
      | Lexer.RPAREN ->
        advance s;
        List.rev (e :: acc)
      | _ -> fail_at s "expected ',' or ')' in argument list"
    in
    loop []
  end

let parse_atom s =
  match peek s with
  | Lexer.IDENT name ->
    advance s;
    if peek s = Lexer.LPAREN then { pred = name; args = parse_args s }
    else { pred = name; args = [] }
  | _ -> fail_at s "expected a predicate name"

let parse_var s =
  match peek s with
  | Lexer.VAR v ->
    advance s;
    v
  | _ -> fail_at s "expected a variable"

let parse_var_list s =
  expect s Lexer.LBRACKET "'['";
  if peek s = Lexer.RBRACKET then begin
    advance s;
    []
  end
  else begin
    let rec loop acc =
      let v = parse_var s in
      match peek s with
      | Lexer.COMMA ->
        advance s;
        loop (v :: acc)
      | Lexer.RBRACKET ->
        advance s;
        List.rev (v :: acc)
      | _ -> fail_at s "expected ',' or ']' in grouping list"
    in
    loop []
  end

let parse_agg_fn s =
  match peek s with
  | Lexer.IDENT "min" -> advance s; Min
  | Lexer.IDENT "max" -> advance s; Max
  | Lexer.IDENT "sum" -> advance s; Sum
  | Lexer.IDENT "avg" -> advance s; Avg
  | Lexer.IDENT "count" -> advance s; Count
  | _ -> fail_at s "expected an aggregate function (min/max/sum/avg/count)"

let parse_aggregate s =
  (* "groupby" already consumed up to its '('. *)
  expect s Lexer.LPAREN "'(' after groupby";
  let source = parse_atom s in
  expect s Lexer.COMMA "','";
  let by = parse_var_list s in
  expect s Lexer.COMMA "','";
  let result = parse_var s in
  expect s Lexer.EQ "'='";
  let fn = parse_agg_fn s in
  expect s Lexer.LPAREN "'('";
  let arg =
    if peek s = Lexer.RPAREN then begin
      if fn <> Count then fail_at s "aggregate function needs an argument";
      Eterm (Const (Value.Int 0))
    end
    else parse_expr s
  in
  expect s Lexer.RPAREN "')'";
  expect s Lexer.RPAREN "')' closing groupby";
  Lagg
    { agg_source = source; agg_group_by = by; agg_result = result;
      agg_fn = fn; agg_arg = arg }

let cmp_of_token = function
  | Lexer.EQ -> Some Eq
  | Lexer.NEQ -> Some Neq
  | Lexer.LT -> Some Lt
  | Lexer.LE -> Some Le
  | Lexer.GT -> Some Gt
  | Lexer.GE -> Some Ge
  | _ -> None

let parse_literal s =
  match peek s with
  | Lexer.NOT | Lexer.BANG ->
    advance s;
    Lneg (parse_atom s)
  | Lexer.IDENT "groupby" when peek2 s = Lexer.LPAREN ->
    advance s;
    parse_aggregate s
  | Lexer.IDENT _ when peek2 s = Lexer.LPAREN -> Lpos (parse_atom s)
  | _ -> (
    let e = parse_expr s in
    match cmp_of_token (peek s) with
    | Some op ->
      advance s;
      let e2 = parse_expr s in
      Lcmp (e, op, e2)
    | None -> (
      (* A bare lowercase identifier with no comparison is a 0-ary atom. *)
      match e with
      | Eterm (Const (Value.Str name)) -> Lpos { pred = name; args = [] }
      | _ -> fail_at s "expected a comparison operator or a body atom"))

(* ---------------------------------------------------------------- *)
(* Statements                                                        *)
(* ---------------------------------------------------------------- *)

(** Evaluate an argument expression that contains no variables, for fact
    arguments like [link(a, -3)]. *)
let rec const_fold = function
  | Eterm (Const c) -> Some c
  | Eterm (Var _) -> None
  | Eadd (a, b) -> fold2 Value.add a b
  | Esub (a, b) -> fold2 Value.sub a b
  | Emul (a, b) -> fold2 Value.mul a b
  | Ediv (a, b) -> fold2 Value.div a b
  | Eneg a -> Option.map Value.neg (const_fold a)

and fold2 op a b =
  match const_fold a, const_fold b with
  | Some x, Some y -> Some (op x y)
  | _ -> None

let parse_statement s =
  let head = parse_atom s in
  match peek s with
  | Lexer.DOT ->
    advance s;
    let consts = List.map const_fold head.args in
    if List.for_all Option.is_some consts then
      Sfact (head.pred, List.map Option.get consts)
    else Srule { head; body = [] }
  | Lexer.TURNSTILE ->
    advance s;
    let rec body acc =
      let l = parse_literal s in
      match peek s with
      | Lexer.COMMA | Lexer.AMP ->
        advance s;
        body (l :: acc)
      | Lexer.DOT ->
        advance s;
        List.rev (l :: acc)
      | _ -> fail_at s "expected ',', '&' or '.' after a body literal"
    in
    Srule { head; body = body [] }
  | _ -> fail_at s "expected '.' or ':-' after the rule head"

(** Parse a whole program text into statements.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)
let parse_program (src : string) : statement list =
  let s = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec loop acc =
    if peek s = Lexer.EOF then List.rev acc else loop (parse_statement s :: acc)
  in
  loop []

(** Split parsed statements into rules and facts (in input order). *)
let split statements =
  let rules = List.filter_map (function Srule r -> Some r | Sfact _ -> None) statements in
  let facts =
    List.filter_map (function Sfact (p, vs) -> Some (p, vs) | Srule _ -> None) statements
  in
  (rules, facts)

(** Parse a source text consisting of rules only. *)
let parse_rules src =
  let rules, facts = split (parse_program src) in
  match facts with
  | [] -> rules
  | (p, _) :: _ ->
    raise (Parse_error (Printf.sprintf "unexpected fact for %s (rules only)" p))

(** Parse one rule. *)
let parse_rule src =
  match parse_rules src with
  | [ r ] -> r
  | rs -> raise (Parse_error (Printf.sprintf "expected one rule, got %d" (List.length rs)))

(** Parse a bare conjunction of body literals — an ad-hoc query, e.g.
    ["hop(a, X), link(X, Y), Y != a"].  A trailing '.' is optional. *)
let parse_body (src : string) : Ast.literal list =
  let s = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec loop acc =
    let l = parse_literal s in
    match peek s with
    | Lexer.COMMA | Lexer.AMP ->
      advance s;
      loop (l :: acc)
    | Lexer.DOT ->
      advance s;
      if peek s = Lexer.EOF then List.rev (l :: acc)
      else fail_at s "expected end of query after '.'"
    | Lexer.EOF -> List.rev (l :: acc)
    | _ -> fail_at s "expected ',', '&' or end of query"
  in
  loop []
