(** Abstract syntax of the Datalog dialect of the paper (Section 3):
    Datalog with stratified negation [VG86, ABW88] and stratified
    aggregation [Mum91], plus arithmetic expressions and comparison
    literals, so Example 6.2's [hop(S,D,C1+C2)] and GROUPBY subgoals are
    expressible directly. *)

module Value = Ivm_relation.Value

type term =
  | Var of string  (** [X], [Source_node] — initial uppercase or [_]. *)
  | Const of Value.t

(** Arithmetic expressions, allowed in rule heads and comparison literals. *)
type expr =
  | Eterm of term
  | Eadd of expr * expr
  | Esub of expr * expr
  | Emul of expr * expr
  | Ediv of expr * expr
  | Eneg of expr

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

type agg_fn = Count | Sum | Min | Max | Avg

(** A body or head atom.  Body atoms are restricted to terms by the safety
    checker; head atoms may carry full expressions. *)
type atom = { pred : string; args : expr list }

(** [GROUPBY (u(S,D,C), [S,D], M = MIN(C))] — Example 6.2.  The grouped
    relation it denotes, [T], has columns [group_by @ [result]]. *)
type aggregate = {
  agg_source : atom;  (** the grouped subgoal [u(S,D,C)]; args are terms. *)
  agg_group_by : string list;  (** grouping variables, each in [agg_source]. *)
  agg_result : string;  (** the variable bound to the aggregate value. *)
  agg_fn : agg_fn;
  agg_arg : expr;  (** aggregated expression over [agg_source]'s variables;
                       ignored for [Count]. *)
}

type literal =
  | Lpos of atom
  | Lneg of atom  (** safe stratified negation, Section 6.1. *)
  | Lagg of aggregate  (** stratified aggregation, Section 6.2. *)
  | Lcmp of expr * cmp_op * expr
      (** comparison filter; [V = expr] with [V] otherwise unbound acts as
          a binding (computed column). *)

type rule = { head : atom; body : literal list }

(** A parsed program statement: a rule, or a ground fact for a base
    relation. *)
type statement = Srule of rule | Sfact of string * Value.t list

(* -------------------------------------------------------------------- *)
(* Variable utilities                                                    *)
(* -------------------------------------------------------------------- *)

module Sset = Set.Make (String)

let term_vars = function Var v -> Sset.singleton v | Const _ -> Sset.empty

let rec expr_vars = function
  | Eterm t -> term_vars t
  | Eadd (a, b) | Esub (a, b) | Emul (a, b) | Ediv (a, b) ->
    Sset.union (expr_vars a) (expr_vars b)
  | Eneg a -> expr_vars a

let atom_vars a =
  List.fold_left (fun acc e -> Sset.union acc (expr_vars e)) Sset.empty a.args

let aggregate_vars agg =
  (* Variables the aggregate literal makes visible to the rest of the rule:
     the grouping variables and the result variable.  Other variables of the
     source atom are local to the aggregation. *)
  Sset.add agg.agg_result (Sset.of_list agg.agg_group_by)

let aggregate_local_vars agg =
  Sset.diff (atom_vars agg.agg_source) (Sset.of_list agg.agg_group_by)

let literal_vars = function
  | Lpos a | Lneg a -> atom_vars a
  | Lagg agg -> aggregate_vars agg
  | Lcmp (a, _, b) -> Sset.union (expr_vars a) (expr_vars b)

let rule_vars r =
  List.fold_left
    (fun acc l -> Sset.union acc (literal_vars l))
    (atom_vars r.head) r.body

(** Predicates referenced by a literal (an aggregate references its grouped
    predicate). *)
let literal_pred = function
  | Lpos a | Lneg a -> Some a.pred
  | Lagg agg -> Some agg.agg_source.pred
  | Lcmp _ -> None

let body_preds r = List.filter_map literal_pred r.body

(* -------------------------------------------------------------------- *)
(* Construction helpers (used pervasively by tests and examples)         *)
(* -------------------------------------------------------------------- *)

let var v = Eterm (Var v)
let const c = Eterm (Const c)
let sym s = const (Value.str s)
let num n = const (Value.Int n)
let atom pred args = { pred; args }
let pos pred args = Lpos (atom pred args)
let neg pred args = Lneg (atom pred args)
let rule head body = { head; body }

let groupby ?(arg = const (Value.Int 0)) ~source ~by ~result fn =
  Lagg
    { agg_source = source; agg_group_by = by; agg_result = result;
      agg_fn = fn; agg_arg = arg }

let agg_fn_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"

let cmp_op_name = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(** Structural equality on rules — used when maintaining views across rule
    insertions and deletions (Section 7). *)
let equal_rule (a : rule) (b : rule) = Stdlib.compare a b = 0
