(** Hand-written lexer for the Datalog dialect.  Tokens carry the line and
    column at which they start so the parser can point at errors.

    Lexical conventions (the usual Datalog ones):
    - identifiers starting with a lowercase letter are predicate names or
      symbolic constants ([link], [a], [tri_hop]);
    - identifiers starting with an uppercase letter or [_] are variables;
    - [%] and [#] start a comment that runs to the end of the line;
    - [:-] separates head from body; both [,] and [&] conjoin body literals
      (the paper writes [&]);
    - [not] (or a leading [!]) negates an atom. *)

exception Lex_error of string

type token =
  | IDENT of string  (** lowercase-initial: predicate or symbol *)
  | VAR of string  (** uppercase-initial or [_]: variable *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | AMP
  | TURNSTILE  (** [:-] *)
  | NOT
  | BANG
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type spanned = { tok : token; line : int; col : int }

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | VAR s -> Printf.sprintf "variable %S" s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | DOT -> "."
  | AMP -> "&"
  | TURNSTILE -> ":-"
  | NOT -> "not"
  | BANG -> "!"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z')
let is_var_start c = (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

(** Tokenize a whole input string.  @raise Lex_error on bad input. *)
let tokenize (src : string) : spanned list =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let tokens = ref [] in
  let emit tok pos = tokens := { tok; line = !line; col = pos - !bol + 1 } :: !tokens in
  let fail pos msg =
    raise
      (Lex_error
         (Printf.sprintf "line %d, column %d: %s" !line (pos - !bol + 1) msg))
  in
  let rec go i =
    if i >= n then emit EOF i
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
        incr line;
        bol := i + 1;
        go (i + 1)
      | '%' | '#' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      | '(' -> emit LPAREN i; go (i + 1)
      | ')' -> emit RPAREN i; go (i + 1)
      | '[' -> emit LBRACKET i; go (i + 1)
      | ']' -> emit RBRACKET i; go (i + 1)
      | ',' -> emit COMMA i; go (i + 1)
      | '.' -> emit DOT i; go (i + 1)
      | '&' -> emit AMP i; go (i + 1)
      | '+' -> emit PLUS i; go (i + 1)
      | '*' -> emit STAR i; go (i + 1)
      | '/' -> emit SLASH i; go (i + 1)
      | '-' -> emit MINUS i; go (i + 1)
      | ':' ->
        if i + 1 < n && src.[i + 1] = '-' then begin
          emit TURNSTILE i;
          go (i + 2)
        end
        else fail i "expected ':-'"
      | '=' -> emit EQ i; go (i + 1)
      | '!' ->
        if i + 1 < n && src.[i + 1] = '=' then begin
          emit NEQ i;
          go (i + 2)
        end
        else begin
          emit BANG i;
          go (i + 1)
        end
      | '<' ->
        if i + 1 < n && src.[i + 1] = '=' then begin
          emit LE i;
          go (i + 2)
        end
        else if i + 1 < n && src.[i + 1] = '>' then begin
          emit NEQ i;
          go (i + 2)
        end
        else begin
          emit LT i;
          go (i + 1)
        end
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then begin
          emit GE i;
          go (i + 2)
        end
        else begin
          emit GT i;
          go (i + 1)
        end
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then fail i "unterminated string literal"
          else
            match src.[j] with
            | '"' -> j + 1
            | '\\' ->
              if j + 1 >= n then fail i "unterminated escape"
              else begin
                (match src.[j + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | 'r' -> Buffer.add_char buf '\r'
                | '\\' -> Buffer.add_char buf '\\'
                | '"' -> Buffer.add_char buf '"'
                | c -> fail (j + 1) (Printf.sprintf "bad escape '\\%c'" c));
                str (j + 2)
              end
            | '\n' -> fail j "newline in string literal"
            | c ->
              Buffer.add_char buf c;
              str (j + 1)
        in
        let j = str (i + 1) in
        emit (STRING (Buffer.contents buf)) i;
        go j
      | c when is_digit c ->
        let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
        let j = digits i in
        let j, is_float =
          if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then
            (digits (j + 1), true)
          else (j, false)
        in
        (* optional exponent: [e|E][+|-]digits — needed so printed floats
           ("1e+16") read back *)
        let j, is_float =
          if j < n && (src.[j] = 'e' || src.[j] = 'E') then begin
            let k =
              if j + 1 < n && (src.[j + 1] = '+' || src.[j + 1] = '-') then j + 2
              else j + 1
            in
            if k < n && is_digit src.[k] then (digits k, true) else (j, is_float)
          end
          else (j, is_float)
        in
        let text = String.sub src i (j - i) in
        (if is_float then emit (FLOAT (float_of_string text)) i
         else
           match int_of_string text with
           | v -> emit (INT v) i
           | exception Failure _ ->
             fail i (Printf.sprintf "integer literal %s out of range" text));
        go j
      | c when is_ident_start c || is_var_start c ->
        let rec word j = if j < n && is_ident_char src.[j] then word (j + 1) else j in
        let j = word i in
        let s = String.sub src i (j - i) in
        (if s = "not" then emit NOT i
         else if is_var_start c then emit (VAR s) i
         else emit (IDENT s) i);
        go j
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !tokens
